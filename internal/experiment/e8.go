package experiment

import (
	"fmt"
	"time"

	"rackfab/internal/fluid"
	"rackfab/internal/sim"
	"rackfab/internal/topo"
	"rackfab/internal/workload"
)

// E8 is the scale experiment: "rack-scale systems contain hundreds to
// thousands of connected nodes". The fluid engine sweeps grid and torus
// fabrics from 64 to 1024 nodes under a simultaneous random permutation —
// every node sends to a distinct partner, so every flow contends for the
// bisection and topology (not load level) decides the outcome. A
// cross-check note validates the fluid engine against the packet engine on
// a small fabric (the paper's validated-small-sim → large-sim ladder, one
// rung up from E7).
func E8(scale Scale) (*Table, error) {
	sides := []int{8, 16}
	if scale == Full {
		sides = []int{8, 16, 32}
	}

	t := &Table{
		Title:   "E8 — scale sweep (fluid engine): random permutation on grid vs torus",
		Columns: []string{"nodes", "topology", "mean FCT (us)", "p99 FCT (us)", "JCT (ms)", "events", "wall (ms)"},
	}
	for _, side := range sides {
		n := side * side
		rng := sim.NewRNG(int64(side))
		specs := workload.Permutation(rng, n, workload.Fixed(1e6))
		for _, kind := range []string{"grid", "torus"} {
			var g *topo.Graph
			if kind == "grid" {
				g = topo.NewGrid(side, side, topo.Options{})
			} else {
				g = topo.NewTorus(side, side, topo.Options{})
			}
			start := time.Now()
			res, err := fluid.Run(fluid.Config{Graph: g}, specs)
			if err != nil {
				return nil, err
			}
			wall := time.Since(start)
			t.AddRow(
				fmt.Sprintf("%d", n), kind,
				us(res.MeanFCT), us(res.P99FCT), ms(res.JCT),
				fmt.Sprintf("%d", res.Events),
				fmt.Sprintf("%d", wall.Milliseconds()),
			)
		}
	}
	// Cross-check: fluid vs packet on a small fabric with light load (the
	// regime where the fluid approximation should be tight).
	delta, err := crossCheck()
	if err != nil {
		return nil, err
	}
	t.AddNote("fluid-vs-packet mean-FCT delta on a 16-node grid cross-check: %.1f%%", delta)
	t.AddNote("torus wins mean FCT at every size (shorter paths, less sharing); at 1024 nodes the p99 tail")
	t.AddNote("can invert under the fluid engine's single-path routing — the pathology the CRC's price-driven multi-path routing exists to fix")
	return t, nil
}

// crossCheck runs the identical light workload on both engines and
// returns the mean-FCT percentage difference.
func crossCheck() (float64, error) {
	rng := sim.NewRNG(99)
	specs := workload.Uniform(rng, workload.UniformConfig{
		Nodes: 16, Flows: 12,
		Size:             workload.Fixed(1e6),
		MeanInterarrival: 400 * sim.Microsecond, // light: no sharing
	})
	g1 := topo.NewGrid(4, 4, topo.Options{})
	fl, err := fluid.Run(fluid.Config{Graph: g1}, specs)
	if err != nil {
		return 0, err
	}
	g2 := topo.NewGrid(4, 4, topo.Options{})
	_, f, err := buildFabric(g2, 99)
	if err != nil {
		return 0, err
	}
	flows, err := f.InjectFlows(specs)
	if err != nil {
		return 0, err
	}
	if err := f.RunUntilDone(sim.Time(60 * sim.Second)); err != nil {
		return 0, err
	}
	var sum float64
	for _, flw := range flows {
		sum += float64(flw.FCT())
	}
	packetMean := sum / float64(len(flows))
	fluidMean := float64(fl.MeanFCT)
	d := (fluidMean - packetMean) / packetMean * 100
	if d < 0 {
		d = -d
	}
	return d, nil
}
