package experiment

import (
	"errors"
	"fmt"
	"time"

	"rackfab/internal/fluid"
	"rackfab/internal/sim"
	"rackfab/internal/topo"
	"rackfab/internal/workload"
)

// ErrNoCompletedFlows reports a fluid/packet run that finished with zero
// completed flows — a mean FCT over such a run is 0/0, and the NaN it used
// to produce would silently poison the table.
var ErrNoCompletedFlows = errors.New("experiment: run completed no flows")

// e8CrossSide is the grid side the fluid-vs-packet cross-check runs at.
// The rung is explicit in the trial spec (crosscheck/16 in the sweep) so
// the table says which scale the validation ladder was anchored at; the
// packet engine bounds it to small fabrics.
const e8CrossSide = 4

// e8Cell is one E8 trial result: a scale rung (res+wall) or the
// cross-check note's delta.
type e8Cell struct {
	res   *fluid.Result
	wall  time.Duration
	delta float64
}

// e8Rung runs one scale-sweep trial: the given workload on a kind×side²
// fabric through the fluid engine. A run that completes no flows surfaces
// ErrNoCompletedFlows tagged with the rung, from the 64-node rung to the
// 4096-node one, instead of folding NaNs into the table.
func e8Rung(kind string, side int, specs []workload.FlowSpec) (e8Cell, error) {
	var g *topo.Graph
	if kind == "grid" {
		g = topo.NewGrid(side, side, topo.Options{})
	} else {
		g = topo.NewTorus(side, side, topo.Options{})
	}
	start := time.Now() //det:wallclock feeds only the table's wall column, which is Volatile-masked out of fingerprints
	res, err := fluid.Run(fluid.Config{Graph: g}, specs)
	if err != nil {
		return e8Cell{}, err
	}
	if len(res.Flows) == 0 {
		return e8Cell{}, fmt.Errorf("%s/%d: %w", kind, side*side, ErrNoCompletedFlows)
	}
	return e8Cell{res: res, wall: time.Since(start)}, nil //det:wallclock feeds only the table's wall column, which is Volatile-masked out of fingerprints
}

// E8 is the scale experiment: "rack-scale systems contain hundreds to
// thousands of connected nodes". The fluid engine sweeps grid and torus
// fabrics from 64 to 4096 nodes under a simultaneous random permutation —
// every node sends to a distinct partner, so every flow contends for the
// bisection and topology (not load level) decides the outcome. The
// 4096-node (64×64) rung runs at Full scale only: one trial is seconds of
// warm-start solver work, not CI material. A cross-check trial validates
// the fluid engine against the packet engine on a small fabric (the
// paper's validated-small-sim → large-sim ladder, one rung up from E7).
func E8(cfg Config) (*Table, error) {
	sides := []int{8, 16}
	if cfg.Scale == Full {
		sides = []int{8, 16, 32, 64}
	}

	kinds := []string{"grid", "torus"}
	trials := make([]Trial[e8Cell], 0, len(sides)*len(kinds)+1)
	for _, side := range sides {
		for _, kind := range kinds {
			side, kind := side, kind
			trials = append(trials, Trial[e8Cell]{
				Name: fmt.Sprintf("%s/%d", kind, side*side),
				Run: func() (e8Cell, error) {
					// Regenerate the workload inside the trial from the same
					// per-side seed: grid and torus see identical
					// permutations without sharing a spec slice across
					// concurrently running trials.
					rng := sim.NewRNG(int64(side))
					specs := workload.Permutation(rng, side*side, workload.Fixed(1e6))
					return e8Rung(kind, side, specs)
				},
			})
		}
	}
	// Cross-check: fluid vs packet on the e8CrossSide² fabric with light
	// load (the regime where the fluid approximation should be tight).
	trials = append(trials, Trial[e8Cell]{
		Name: fmt.Sprintf("crosscheck/%d", e8CrossSide*e8CrossSide),
		Run: func() (e8Cell, error) {
			rng := sim.NewRNG(99)
			delta, err := crossCheck(e8CrossSide, workload.Uniform(rng, workload.UniformConfig{
				Nodes: e8CrossSide * e8CrossSide, Flows: 12,
				Size:             workload.Fixed(1e6),
				MeanInterarrival: 400 * sim.Microsecond, // light: no sharing
			}))
			if err != nil {
				return e8Cell{}, err
			}
			return e8Cell{delta: delta}, nil
		},
	})
	cells, err := Sweep(cfg, trials)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "E8 — scale sweep (fluid engine): random permutation on grid vs torus",
		Columns: []string{"nodes", "topology", "mean FCT (us)", "p99 FCT (us)", "JCT (ms)", "events", "warm fills (%)", "wall (ms)"},
	}
	// Wall time is real elapsed time: reproducible in shape, not in bytes.
	t.MarkVolatile("wall (ms)")
	i := 0
	for _, side := range sides {
		for _, kind := range kinds {
			c := cells[i]
			i++
			t.AddRow(
				fmt.Sprintf("%d", side*side), kind,
				us(c.res.MeanFCT), us(c.res.P99FCT), ms(c.res.JCT),
				fmt.Sprintf("%d", c.res.Events),
				fmt.Sprintf("%.1f", c.res.Solver.WarmHitPct()),
				fmt.Sprintf("%d", c.wall.Milliseconds()),
			)
		}
	}
	t.AddNote("fluid-vs-packet mean-FCT delta on a %d-node grid cross-check: %.1f%%", e8CrossSide*e8CrossSide, cells[i].delta)
	t.AddNote("wall (ms) is per-trial wall clock; with -parallel > 1 concurrent trials share cores,")
	t.AddNote("so cells overstate solver cost — use -parallel 1 when quoting absolute wall numbers")
	t.AddNote("torus wins mean FCT at every size (shorter paths, less sharing); at 1024+ nodes the p99 tail")
	t.AddNote("can invert under the fluid engine's single-path routing — the pathology the CRC's price-driven multi-path routing exists to fix")
	return t, nil
}

// crossCheck runs the identical workload on both engines (a side×side grid)
// and returns the mean-FCT percentage difference. A run that completes no
// flows on either engine yields ErrNoCompletedFlows rather than a NaN
// delta.
func crossCheck(side int, specs []workload.FlowSpec) (float64, error) {
	g1 := topo.NewGrid(side, side, topo.Options{})
	fl, err := fluid.Run(fluid.Config{Graph: g1}, specs)
	if err != nil {
		return 0, err
	}
	if len(fl.Flows) == 0 {
		return 0, fmt.Errorf("fluid engine: %w", ErrNoCompletedFlows)
	}
	g2 := topo.NewGrid(side, side, topo.Options{})
	_, f, err := buildFabric(g2, 99)
	if err != nil {
		return 0, err
	}
	flows, err := f.InjectFlows(specs)
	if err != nil {
		return 0, err
	}
	if err := f.RunUntilDone(sim.Time(60 * sim.Second)); err != nil {
		return 0, err
	}
	var sum float64
	completed := 0
	for _, flw := range flows {
		if !flw.Done() {
			continue
		}
		sum += float64(flw.FCT())
		completed++
	}
	if completed == 0 {
		return 0, fmt.Errorf("packet engine: %w", ErrNoCompletedFlows)
	}
	// A partial packet run would bias the delta toward whatever happened to
	// finish — the comparison is only meaningful over the full workload.
	if completed < len(flows) {
		return 0, fmt.Errorf("experiment: cross-check packet engine completed %d of %d flows", completed, len(flows))
	}
	packetMean := sum / float64(completed)
	fluidMean := float64(fl.MeanFCT)
	d := (fluidMean - packetMean) / packetMean * 100
	if d < 0 {
		d = -d
	}
	return d, nil
}
