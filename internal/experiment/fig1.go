package experiment

import (
	"fmt"

	"rackfab/internal/fabric"
	"rackfab/internal/phy"
	"rackfab/internal/sim"
	"rackfab/internal/topo"
	"rackfab/internal/workload"
)

// Fig1 regenerates Figure 1: "the latency due to propagation of packets in
// the media vs. the latency due to packet traversing a layer 2
// state-of-the-art cut through switch. We assume a switch every 2 meters."
//
// Two series over distance (one switch per 2 m hop): cumulative media
// flight time and cumulative switch traversal time. The third column runs
// the same path through the packet simulator to tie the analytic figure to
// the measured model. The paper's conclusion — "in the scale of a rack,
// the latency due to packet switching is dominant" — should show as a
// ratio far above 1 at every row.
func Fig1(cfg Config) (*Table, error) {
	maxHops := cfg.Scale.pick(8, 20)
	const (
		spacingM = 2.0
		pipeline = 450 * sim.Nanosecond
	)
	media := phy.ProfileOf(phy.OpticalFiber)
	perHopMedia := media.Propagation(spacingM)

	trials := make([]Trial[sim.Duration], 0, maxHops)
	for hops := 1; hops <= maxHops; hops++ {
		trials = append(trials, Trial[sim.Duration]{
			Name: fmt.Sprintf("hops=%d", hops),
			Run:  func() (sim.Duration, error) { return fig1Measure(hops, spacingM, pipeline) },
		})
	}
	measured, err := Sweep(cfg, trials)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Figure 1 — media propagation vs cut-through switching latency (switch every 2 m)",
		Columns: []string{"hops", "distance(m)", "media(ns)", "switching(ns)", "sim-measured(ns)", "switch/media"},
	}
	for hops := 1; hops <= maxHops; hops++ {
		mediaTotal := sim.Duration(int64(hops) * int64(perHopMedia))
		switchTotal := sim.Duration(int64(hops) * int64(pipeline))
		t.AddRow(
			fmt.Sprintf("%d", hops),
			fmt.Sprintf("%.0f", float64(hops)*spacingM),
			ns(mediaTotal),
			ns(switchTotal),
			ns(measured[hops-1]),
			fmt.Sprintf("%.0fx", float64(switchTotal)/float64(mediaTotal)),
		)
	}
	t.AddNote("media: optical fiber at %.1f ns/m; switch: %v cut-through pipeline per hop", float64(media.PropagationPerMeter)/1000, pipeline)
	t.AddNote("sim-measured: one 64 B probe end-to-end on a line fabric minus source NIC serialization;")
	t.AddNote("it carries a constant ≈460 ns tail (destination switch + host-port delivery) on top of the switching series")
	return t, nil
}

// Fig1Plot renders the Figure 1 series as an ASCII chart (log-scale y
// axis, the shape printed in the paper).
func Fig1Plot(t *Table) (*Plot, error) {
	p := &Plot{
		Title:  "Figure 1 — cumulative latency vs distance (switch every 2 m)",
		XLabel: "distance, m",
		YLabel: "latency, ns",
		LogY:   true,
		Series: []Series{
			{Name: "media propagation", Marker: 'm'},
			{Name: "cut-through switching", Marker: 'S'},
		},
	}
	for _, row := range t.Rows {
		var dist, media, sw float64
		if _, err := fmt.Sscanf(row[1], "%g", &dist); err != nil {
			return nil, fmt.Errorf("experiment: fig1 plot: %w", err)
		}
		if _, err := fmt.Sscanf(row[2], "%g", &media); err != nil {
			return nil, fmt.Errorf("experiment: fig1 plot: %w", err)
		}
		if _, err := fmt.Sscanf(row[3], "%g", &sw); err != nil {
			return nil, fmt.Errorf("experiment: fig1 plot: %w", err)
		}
		p.Series[0].Points = append(p.Series[0].Points, Point{X: dist, Y: media})
		p.Series[1].Points = append(p.Series[1].Points, Point{X: dist, Y: sw})
	}
	return p, nil
}

// fig1Measure runs one probe frame over a hops-link line fabric and
// returns its end-to-end latency minus the source NIC serialization, i.e.
// the fabric-attributable latency Figure 1 plots.
func fig1Measure(hops int, spacingM float64, pipeline sim.Duration) (sim.Duration, error) {
	g := topo.NewLine(hops+1, topo.Options{
		LanesPerLink: 4,
		Media:        phy.OpticalFiber,
		NodeSpacingM: spacingM,
	})
	eng, f, err := buildFabric(g, 1, func(c *fabric.Config) {
		c.Switch.PipelineLatency = pipeline
	})
	if err != nil {
		return 0, err
	}
	_ = eng
	if _, err := f.InjectFlows([]workload.FlowSpec{{Src: 0, Dst: hops, Bytes: 46}}); err != nil {
		return 0, err
	}
	if err := f.RunUntilDone(sim.Time(sim.Second)); err != nil {
		return 0, err
	}
	nicSerial := sim.Transmission(64*8+20*8, 100e9)
	return sim.Duration(f.Stats().Latency.Max()) - nicSerial, nil
}
