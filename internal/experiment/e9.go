package experiment

import (
	"fmt"

	"rackfab/internal/phy"
	"rackfab/internal/plp"
	"rackfab/internal/ringctl"
	"rackfab/internal/sim"
	"rackfab/internal/topo"
	"rackfab/internal/workload"
)

// E9 extends the adaptive-FEC evaluation (E6) to bursty channels — the
// Gilbert–Elliott regime where a link is pristine most of the time and
// briefly terrible. This is the case that breaks *any* fixed provisioning
// choice: a code sized for the average BER drowns during bursts, a code
// sized for bursts taxes every clean hour. Runtime adaptation (PLP #4) is
// the paper's answer; this table quantifies it.
func E9(cfg Config) (*Table, error) {
	flowBytes := int64(cfg.Scale.pick(2e6, 8e6))
	streamFlows := cfg.Scale.pick(8, 24)

	type outcome struct {
		totalFCT sim.Duration
		retx     int64
		switches int
	}
	run := func(mode string) (*outcome, error) {
		g := topo.NewLine(2, topo.Options{LanesPerLink: 2})
		e := g.Edges()[0]
		// Burst channel: clean 1e-12 floor, 3e-5 bursts, 90% good dwell.
		chRng := sim.NewRNG(77)
		for _, lane := range e.Link.Lanes {
			ch, err := phy.NewBurstChannel(chRng.SplitIndexed("burst", lane.Index),
				1e-12, 3e-5, 1800*sim.Microsecond, 200*sim.Microsecond)
			if err != nil {
				return nil, err
			}
			lane.AttachBurstChannel(ch)
		}
		eng, f, err := buildFabric(g, 62)
		if err != nil {
			return nil, err
		}
		var ctl *ringctl.Controller
		switch mode {
		case "none", "":
			// default profile
		case "rs-fixed":
			if err := f.Execute(plp.Command{Kind: plp.SetFEC, Link: e.Link.ID, FECProfile: "rs(255,223)"}, nil); err != nil {
				return nil, err
			}
		case "adaptive":
			cfg := ringctl.DefaultConfig()
			cfg.Epoch = 50 * sim.Microsecond
			cfg.EnableReconfig, cfg.EnableBypass, cfg.EnablePower, cfg.EnableRouting = false, false, false, false
			ctl = ringctl.New(eng, f, cfg)
			ctl.Start()
		case "adaptive-sticky":
			// Dwell sized above the burst period (2 ms / 50 µs epochs =
			// 40): the controller escalates once and holds through the
			// clean gaps instead of paying switch downtime every cycle.
			cfg := ringctl.DefaultConfig()
			cfg.Epoch = 50 * sim.Microsecond
			cfg.FECDeescalateDwell = 64
			cfg.EnableReconfig, cfg.EnableBypass, cfg.EnablePower, cfg.EnableRouting = false, false, false, false
			ctl = ringctl.New(eng, f, cfg)
			ctl.Start()
		}
		// A stream of transfers spanning many burst cycles.
		specs := make([]workload.FlowSpec, streamFlows)
		for i := range specs {
			specs[i] = workload.FlowSpec{Src: 0, Dst: 1, Bytes: flowBytes, Label: "stream"}
		}
		flows, err := f.InjectFlows(specs)
		if err != nil {
			return nil, err
		}
		if err := f.RunUntilDone(sim.Time(120 * sim.Second)); err != nil {
			return nil, err
		}
		out := &outcome{}
		for _, fl := range flows {
			out.totalFCT += fl.FCT()
			out.retx += fl.Retransmits()
		}
		if ctl != nil {
			for _, d := range ctl.Decisions() {
				if d.Policy == "fec" && d.Cmd != nil {
					out.switches++
				}
			}
		}
		return out, nil
	}

	modes := []string{"none", "rs-fixed", "adaptive", "adaptive-sticky"}
	trials := make([]Trial[*outcome], 0, len(modes))
	for _, mode := range modes {
		trials = append(trials, Trial[*outcome]{
			Name: mode,
			Run:  func() (*outcome, error) { return run(mode) },
		})
	}
	res, err := Sweep(cfg, trials)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   fmt.Sprintf("E9 — adaptive FEC on a bursty (Gilbert–Elliott) link: %d × %d B stream", streamFlows, flowBytes),
		Columns: []string{"FEC regime", "total transfer time (ms)", "retransmits", "FEC switches"},
	}
	for i, mode := range modes {
		o := res[i]
		t.AddRow(mode, ms(o.totalFCT), fmt.Sprintf("%d", o.retx), fmt.Sprintf("%d", o.switches))
	}
	t.AddNote("channel: BER 1e-12 floor with 3e-5 bursts, 10%% bad dwell (200 µs bursts every ~2 ms)")
	t.AddNote("none bleeds retransmits in every burst; fixed RS pays its overhead on every clean byte;")
	t.AddNote("default adaptive flaps when the burst period beats its dwell (each switch costs downtime);")
	t.AddNote("sizing the de-escalation dwell above the burst period (adaptive-sticky) recovers fixed-RS performance")
	t.AddNote("while keeping the escalate-on-evidence behaviour a pristine link needs (E6)")
	return t, nil
}
