package experiment

import (
	"fmt"

	"rackfab/internal/fabric"
	"rackfab/internal/ringctl"
	"rackfab/internal/sim"
	"rackfab/internal/topo"
	"rackfab/internal/workload"
)

// A3 compares the routing disciplines available to the fabric under an
// adversarial permutation: oblivious shortest-path (ECMP), oblivious
// Valiant load balancing (pivot through a random node — bounded worst
// case, doubled path length), and the CRC's adaptive price-driven routing
// (the paper's approach: measure, price, re-route). It is the ablation
// that situates the Closed Ring Control between the two classical
// oblivious designs.
func A3(cfg Config) (*Table, error) {
	side := cfg.Scale.pick(4, 6)
	flowBytes := int64(cfg.Scale.pick(256e3, 1e6))
	n := side * side

	type result struct {
		jct      sim.Duration
		fctP99   sim.Duration
		meanHops float64
	}
	run := func(mode string) (*result, error) {
		g := topo.NewGrid(side, side, topo.Options{LanesPerLink: 2})
		eng, f, err := buildFabric(g, 91)
		if err != nil {
			return nil, err
		}
		switch mode {
		case "shortest":
			// default
		case "vlb":
			f.SetVLB(true)
		case "adaptive":
			cfg := ringctl.DefaultConfig()
			cfg.Epoch = 30 * sim.Microsecond
			cfg.EnableReconfig, cfg.EnableBypass, cfg.EnablePower, cfg.EnableFEC = false, false, false, false
			ctl := ringctl.New(eng, f, cfg)
			ctl.Start()
		}
		rng := sim.NewRNG(19)
		specs := workload.Permutation(rng, n, workload.Fixed(flowBytes))
		flows, err := f.InjectFlows(specs)
		if err != nil {
			return nil, err
		}
		if err := f.RunUntilDone(sim.Time(60 * sim.Second)); err != nil {
			return nil, err
		}
		jct, err := fabric.JobCompletionTime(flows)
		if err != nil {
			return nil, err
		}
		return &result{
			jct:      jct,
			fctP99:   sim.Duration(f.Stats().FCT.Quantile(0.99)),
			meanHops: f.Stats().Hops.Mean(),
		}, nil
	}

	modes := []string{"shortest", "vlb", "adaptive"}
	trials := make([]Trial[*result], 0, len(modes))
	for _, mode := range modes {
		trials = append(trials, Trial[*result]{
			Name: mode,
			Run:  func() (*result, error) { return run(mode) },
		})
	}
	res, err := Sweep(cfg, trials)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   fmt.Sprintf("A3 — routing disciplines under a random permutation, %d nodes, %d B flows", n, flowBytes),
		Columns: []string{"routing", "JCT (ms)", "FCT p99 (us)", "mean hops"},
	}
	for i, mode := range modes {
		r := res[i]
		t.AddRow(mode, ms(r.jct), us(r.fctP99), fmt.Sprintf("%.2f", r.meanHops))
	}
	t.AddNote("VLB pays ~2x hops for oblivious worst-case guarantees; the CRC adapts with measured prices instead")
	return t, nil
}
