package experiment

import (
	"fmt"

	"rackfab/internal/fabric"
	"rackfab/internal/plp"
	"rackfab/internal/ringctl"
	"rackfab/internal/sim"
	"rackfab/internal/topo"
	"rackfab/internal/workload"
)

// E3 reproduces the paper's motivating MapReduce claim: "Since a reducer
// has to wait for data from all mappers, the slowest link pulls down the
// performance of an entire system."
//
// Mappers occupy the grid's left half and reducers its right half, so the
// whole shuffle crosses the column bisection — the cut links are the
// bottleneck and every reducer waits for flows that traverse them. The
// shuffle runs three times: (a) healthy fabric, static routing; (b) one
// bisection link degraded to a single lane, static routing — the slowest
// link gates the job; (c) the same degraded fabric with the Closed Ring
// Control pricing the slow link and shifting load to the healthy cut
// links. The adaptive fabric must recover most of the gap between (b) and
// (a).
func E3(cfg Config) (*Table, error) {
	side := cfg.Scale.pick(4, 6)
	bytesPerPair := int64(cfg.Scale.pick(32e3, 128e3))
	n := side * side

	run := func(degrade, adaptive bool) (sim.Duration, error) {
		g := topo.NewGrid(side, side, topo.Options{LanesPerLink: 2})
		eng, f, err := buildFabric(g, 11)
		if err != nil {
			return 0, err
		}
		if degrade {
			// Degrade one bisection link: lose one of its two lanes.
			e, ok := g.EdgeBetween(g.NodeAt(side/2-1, side/2), g.NodeAt(side/2, side/2))
			if !ok {
				return 0, fmt.Errorf("experiment: bisection link missing")
			}
			if err := f.Execute(plp.Command{
				Kind: plp.LaneOff, Link: e.Link.ID, Lane: 1,
				Reason: "injected fault",
			}, nil); err != nil {
				return 0, err
			}
		}
		if adaptive {
			cfg := ringctl.DefaultConfig()
			cfg.Epoch = 20 * sim.Microsecond
			cfg.EnableReconfig = false // isolate the routing response
			cfg.EnableBypass = false
			ctl := ringctl.New(eng, f, cfg)
			ctl.Start()
		}
		// Let the fault apply before traffic starts.
		if err := eng.RunUntil(sim.Time(sim.Millisecond)); err != nil {
			return 0, err
		}
		// Left-half mappers, right-half reducers: the shuffle crosses the
		// bisection.
		var mappers, reducers []int
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				if x < side/2 {
					mappers = append(mappers, int(g.NodeAt(x, y)))
				} else {
					reducers = append(reducers, int(g.NodeAt(x, y)))
				}
			}
		}
		rng := sim.NewRNG(3)
		specs := workload.Shuffle(rng, workload.ShuffleConfig{
			Mappers:      mappers,
			Reducers:     reducers,
			BytesPerPair: bytesPerPair,
			Jitter:       10 * sim.Microsecond,
		})
		flows, err := f.InjectFlows(specs)
		if err != nil {
			return 0, err
		}
		if err := f.RunUntilDone(sim.Time(60 * sim.Second)); err != nil {
			return 0, err
		}
		return fabric.JobCompletionTime(flows)
	}

	res, err := Sweep(cfg, []Trial[sim.Duration]{
		{Name: "healthy", Run: func() (sim.Duration, error) { return run(false, false) }},
		{Name: "degraded-static", Run: func() (sim.Duration, error) { return run(true, false) }},
		{Name: "degraded-adaptive", Run: func() (sim.Duration, error) { return run(true, true) }},
	})
	if err != nil {
		return nil, err
	}
	healthy, static, adaptive := res[0], res[1], res[2]

	t := &Table{
		Title:   fmt.Sprintf("E3 — MapReduce shuffle JCT, %d nodes (left→right bisection shuffle), %d B per pair", n, bytesPerPair),
		Columns: []string{"scenario", "shuffle JCT (ms)", "vs healthy"},
	}
	t.AddRow("healthy fabric, static routes", ms(healthy), "—")
	t.AddRow("one slow link, static routes", ms(static), pct(float64(static), float64(healthy)))
	t.AddRow("one slow link, CRC adaptive routing", ms(adaptive), pct(float64(adaptive), float64(healthy)))
	recovered := "n/a"
	if static > healthy {
		recovered = fmt.Sprintf("%.0f%%", float64(static-adaptive)/float64(static-healthy)*100)
	}
	t.AddNote("gap recovered by adaptive routing: %s", recovered)
	t.AddNote("fault: one bisection link broken from 2 lanes to 1 (half bandwidth) via PLP #3")
	return t, nil
}
