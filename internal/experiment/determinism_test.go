package experiment

import (
	"testing"
)

// TestExperimentsDeterministic is the regression gate for the paper's
// reproducibility claim and for the parallel trial runner: every
// registered experiment, run at Quick scale,
//
//  1. renders byte-identical tables on two sequential runs (same seeds →
//     same bytes), and
//  2. renders the same bytes when its trials are fanned out across a
//     worker pool as when they run one at a time.
//
// Comparison uses Table.Fingerprint, which masks columns explicitly
// marked volatile (wall-clock timings) and nothing else.
func TestExperimentsDeterministic(t *testing.T) {
	// The two tens-of-seconds experiments are skipped in -short mode so
	// the full-suite race pass (`go test -race -short ./...`) stays under
	// a few minutes; the plain CI Test step still runs everything.
	slow := map[string]bool{"a2": true, "e5": true}
	for _, id := range IDs() {
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			if testing.Short() && slow[id] {
				t.Skipf("%s takes tens of seconds; skipped in -short (race) mode", id)
			}
			run, ok := Lookup(id)
			if !ok {
				t.Fatalf("experiment %q missing from registry", id)
			}
			render := func(cfg Config) string {
				tab, err := run(cfg)
				if err != nil {
					t.Fatalf("%s at %+v: %v", id, cfg, err)
				}
				return tab.Fingerprint()
			}
			seq1 := render(Sequential(Quick))
			seq2 := render(Sequential(Quick))
			if seq1 != seq2 {
				t.Fatalf("%s is not repeatable across sequential runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", id, seq1, seq2)
			}
			par := render(Config{Scale: Quick, Parallel: 4})
			if par != seq1 {
				t.Fatalf("%s diverges under the parallel runner:\n--- sequential ---\n%s\n--- parallel(4) ---\n%s", id, seq1, par)
			}
		})
	}
}
