package experiment

import (
	"fmt"

	"rackfab/internal/phy"
	"rackfab/internal/plp"
	"rackfab/internal/ringctl"
	"rackfab/internal/sim"
	"rackfab/internal/topo"
	"rackfab/internal/workload"
)

// E5 sweeps the paper's central optimization: "finding the minimum flow
// size for which reconfiguration is worth the cost".
//
// A probe flow crosses a 5-node line whose middle links are congested by
// background elephants. For each probe size the flow runs twice: on the
// shared switched path, and with a physical-layer express channel
// provisioned at t=0 (paying the full Break+Bypass setup latency before
// the channel exists). Small probes finish before the express pays off;
// large probes win big. The crossover should sit near the analytic
// σ* = C·r_b·r_a/(8(r_a−r_b)).
func E5(cfg Config) (*Table, error) {
	sizes := []int64{16e3, 64e3, 256e3, 1e6, 4e6}
	if cfg.Scale == Full {
		sizes = []int64{16e3, 32e3, 64e3, 128e3, 256e3, 512e3, 1e6, 2e6, 4e6, 16e6}
	}

	run := func(bytes int64, express bool) (sim.Duration, error) {
		g := topo.NewLine(5, topo.Options{LanesPerLink: 2})
		eng, f, err := buildFabric(g, 31)
		if err != nil {
			return 0, err
		}
		if express {
			for x := 0; x+1 < 5; x++ {
				e, _ := g.EdgeBetween(topo.NodeID(x), topo.NodeID(x+1))
				if err := f.Execute(plp.Command{
					Kind: plp.Break, Link: e.Link.ID, KeepLanes: 1,
					FreedState: phy.LaneBypassed,
				}, nil); err != nil {
					return 0, err
				}
			}
			if err := f.Execute(plp.Command{Kind: plp.BypassOn, Path: []int{0, 1, 2, 3, 4}}, nil); err != nil {
				return 0, err
			}
		}
		// Background elephants congest the middle links: they start
		// immediately and outlive any probe. Their endpoints avoid the
		// probe's, so shortest-path routing never moves them onto the
		// probe's express channel.
		bg := []workload.FlowSpec{
			{Src: 1, Dst: 3, Bytes: 1e9, Label: "bg"},
			{Src: 2, Dst: 4, Bytes: 1e9, Label: "bg"},
		}
		probe := workload.FlowSpec{Src: 0, Dst: 4, Bytes: bytes, Label: "probe"}
		flows, err := f.InjectFlows(append(bg, probe))
		if err != nil {
			return 0, err
		}
		probeFlow := flows[2]
		// Run until the probe (not the elephants) completes.
		for probeStep := 0; !probeFlow.Done(); probeStep++ {
			if probeStep > 2_000_000 {
				return 0, fmt.Errorf("experiment: probe never completed")
			}
			if !eng.Step() {
				break
			}
		}
		if !probeFlow.Done() {
			return 0, fmt.Errorf("experiment: probe unfinished")
		}
		return probeFlow.FCT(), nil
	}

	trials := make([]Trial[sim.Duration], 0, 2*len(sizes))
	for _, size := range sizes {
		trials = append(trials,
			Trial[sim.Duration]{
				Name: fmt.Sprintf("switched/%dB", size),
				Run:  func() (sim.Duration, error) { return run(size, false) },
			},
			Trial[sim.Duration]{
				Name: fmt.Sprintf("express/%dB", size),
				Run:  func() (sim.Duration, error) { return run(size, true) },
			})
	}
	res, err := Sweep(cfg, trials)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "E5 — minimum flow size for which reconfiguration pays (σ*)",
		Columns: []string{"probe size (B)", "switched FCT (us)", "express FCT (us)", "winner"},
	}
	var crossover int64 = -1
	var largest int64
	var largestDirect, largestExpr sim.Duration
	for i, size := range sizes {
		direct, expr := res[2*i], res[2*i+1]
		winner := "switched"
		if expr < direct {
			winner = "express"
			if crossover < 0 {
				crossover = size
			}
		}
		t.AddRow(fmt.Sprintf("%d", size), us(direct), us(expr), winner)
		largest, largestDirect, largestExpr = size, direct, expr
	}

	// Analytic threshold from the *measured* steady rates: the largest
	// probe's FCTs give r_b (switched fair share under contention) and
	// r_a (express channel), so σ* is self-consistent with the sweep.
	prof := phy.ProfileOf(phy.Backplane)
	breakLat, _ := plp.Cost(prof, plp.Break)
	bypassLat, _ := plp.Cost(prof, plp.BypassOn)
	setup := sim.Duration(4*int64(breakLat)) + bypassLat
	rateBefore := float64(largest*8) / largestDirect.Seconds()
	exprTransfer := largestExpr - setup
	if exprTransfer <= 0 {
		exprTransfer = largestExpr
	}
	rateAfter := float64(largest*8) / exprTransfer.Seconds()
	sigma := ringctl.MinFlowSize(setup, rateBefore, rateAfter)
	t.AddNote("analytic σ* = %d B from measured rates (setup %v, r_b %.1fG → r_a %.1fG)",
		sigma, setup, rateBefore/1e9, rateAfter/1e9)
	if crossover > 0 {
		t.AddNote("measured crossover: express first wins at %d B", crossover)
		t.AddNote("the crossover sits above σ* because the donor Breaks halve the switched path during setup — a transition cost the first-order σ* model omits")
	} else {
		t.AddNote("no crossover inside the sweep")
	}
	return t, nil
}
