package experiment

import (
	"fmt"

	"rackfab/internal/ringctl"
	"rackfab/internal/sim"
	"rackfab/internal/topo"
	"rackfab/internal/workload"
)

// Fig2 regenerates Figure 2: "Initially, the rack is configured using a
// grid topology of two lanes per link. Internal indications are fed to the
// Close Ring Control - CRC, that issues commands to the Physical Layer
// Primitives - PLP. These result in a torus topology running at one lane
// per link."
//
// The same uniform workload runs twice: on the untouched grid, and on the
// grid after the CRC executes the grid→torus PLP plan. The table compares
// mean hop count, latency, flow completion and aggregate power — the
// reconfiguration must cut hops and latency without exceeding the grid's
// power envelope.
func Fig2(cfg Config) (*Table, error) {
	side := cfg.Scale.pick(4, 8)
	flows := cfg.Scale.pick(60, 400)

	type phase struct {
		meanHops   float64
		latP50     sim.Duration
		latP99     sim.Duration
		fctP99     sim.Duration
		powerPeakW float64
		express    int
		commands   int
	}
	run := func(reconfigure bool) (*phase, error) {
		g := topo.NewGrid(side, side, topo.Options{LanesPerLink: 2})
		eng, f, err := buildFabric(g, 42)
		if err != nil {
			return nil, err
		}
		var commands int
		if reconfigure {
			ctl := ringctl.New(eng, f, ringctl.DefaultConfig())
			if err := ctl.ApplyGridToTorus(1); err != nil {
				return nil, err
			}
			// Let the PLP plan drain before offering traffic.
			if err := eng.RunUntil(sim.Time(50 * sim.Millisecond)); err != nil {
				return nil, err
			}
			for _, d := range ctl.Decisions() {
				if d.Cmd != nil {
					commands++
				}
			}
		}
		// RPC-class traffic: the disaggregated-rack messages whose latency
		// the paper optimizes. Small messages are hop-dominated, so the
		// torus's shorter paths win even at one lane per link; bulk
		// transfers would instead prefer the 2-lane grid's bandwidth —
		// which is exactly the trade the CRC's price function arbitrates.
		rng := sim.NewRNG(7)
		specs := workload.Uniform(rng, workload.UniformConfig{
			Nodes: side * side, Flows: flows,
			Size:             workload.Fixed(512),
			MeanInterarrival: 2 * sim.Microsecond,
		})
		if _, err := f.InjectFlows(specs); err != nil {
			return nil, err
		}
		if err := f.RunUntilDone(sim.Time(10 * sim.Second)); err != nil {
			return nil, err
		}
		mean, err := g.MeanHops()
		if err != nil {
			return nil, err
		}
		express := 0
		for _, e := range g.Edges() {
			if e.Express {
				express++
			}
		}
		return &phase{
			meanHops:   mean,
			latP50:     sim.Duration(f.Stats().Latency.Quantile(0.5)),
			latP99:     sim.Duration(f.Stats().Latency.Quantile(0.99)),
			fctP99:     sim.Duration(f.Stats().FCT.Quantile(0.99)),
			powerPeakW: f.PowerBudget().PeakW(),
			express:    express,
			commands:   commands,
		}, nil
	}

	res, err := Sweep(cfg, []Trial[*phase]{
		{Name: "grid", Run: func() (*phase, error) { return run(false) }},
		{Name: "torus", Run: func() (*phase, error) { return run(true) }},
	})
	if err != nil {
		return nil, err
	}
	grid, torus := res[0], res[1]

	t := &Table{
		Title:   fmt.Sprintf("Figure 2 — grid (2 lanes/link) vs CRC-reconfigured torus (1 lane/link), %dx%d rack", side, side),
		Columns: []string{"metric", "grid 2-lane", "torus 1-lane (PLP)", "delta"},
	}
	t.AddRow("mean hops", fmt.Sprintf("%.2f", grid.meanHops), fmt.Sprintf("%.2f", torus.meanHops), pct(torus.meanHops, grid.meanHops))
	t.AddRow("frame latency p50 (us)", us(grid.latP50), us(torus.latP50), pct(float64(torus.latP50), float64(grid.latP50)))
	t.AddRow("frame latency p99 (us)", us(grid.latP99), us(torus.latP99), pct(float64(torus.latP99), float64(grid.latP99)))
	t.AddRow("flow completion p99 (us)", us(grid.fctP99), us(torus.fctP99), pct(float64(torus.fctP99), float64(grid.fctP99)))
	t.AddRow("peak power (W)", fmt.Sprintf("%.1f", grid.powerPeakW), fmt.Sprintf("%.1f", torus.powerPeakW), pct(torus.powerPeakW, grid.powerPeakW))
	t.AddRow("express wrap channels", "0", fmt.Sprintf("%d", torus.express), "")
	t.AddRow("PLP commands issued", "0", fmt.Sprintf("%d", torus.commands), "")
	t.AddNote("the torus is reached purely through Break (PLP #1) and BypassOn (PLP #2); no recabling")
	t.AddNote("power must not rise: donated lanes drop from SerDes draw to retimer draw")
	return t, nil
}
