package experiment

import (
	"fmt"

	"rackfab/internal/ringctl"
	"rackfab/internal/sim"
	"rackfab/internal/topo"
	"rackfab/internal/workload"
)

// A1 ablates the CRC price weights under hotspot traffic: the full price
// function against latency-only, congestion-only, and no re-pricing at
// all. It shows which feedback terms the Closed Ring Control actually
// needs to tame a skewed load.
func A1(cfg Config) (*Table, error) {
	side := cfg.Scale.pick(4, 6)
	flows := cfg.Scale.pick(120, 600)
	n := side * side

	run := func(weights *ringctl.PriceWeights) (sim.Duration, sim.Duration, error) {
		g := topo.NewGrid(side, side, topo.Options{LanesPerLink: 2})
		eng, f, err := buildFabric(g, 71)
		if err != nil {
			return 0, 0, err
		}
		if weights != nil {
			cfg := ringctl.DefaultConfig()
			cfg.Weights = *weights
			cfg.Epoch = 30 * sim.Microsecond
			cfg.EnableReconfig, cfg.EnableBypass, cfg.EnablePower, cfg.EnableFEC = false, false, false, false
			ctl := ringctl.New(eng, f, cfg)
			ctl.Start()
		}
		rng := sim.NewRNG(13)
		specs := workload.Hotspot(rng, workload.HotspotConfig{
			Nodes: n, Flows: flows,
			Size:             workload.Fixed(64e3),
			HotNodes:         2,
			HotFraction:      0.6,
			MeanInterarrival: 2 * sim.Microsecond,
		})
		if _, err := f.InjectFlows(specs); err != nil {
			return 0, 0, err
		}
		if err := f.RunUntilDone(sim.Time(30 * sim.Second)); err != nil {
			return 0, 0, err
		}
		return sim.Duration(f.Stats().FCT.Quantile(0.5)),
			sim.Duration(f.Stats().FCT.Quantile(0.99)), nil
	}

	full := ringctl.DefaultWeights()
	latOnly := ringctl.PriceWeights{Latency: 1}
	congOnly := ringctl.PriceWeights{Congestion: 1}

	type quantiles struct{ p50, p99 sim.Duration }
	cases := []struct {
		name string
		w    *ringctl.PriceWeights
	}{
		{"static (no CRC)", nil},
		{"full price function", &full},
		{"latency term only", &latOnly},
		{"congestion term only", &congOnly},
	}
	trials := make([]Trial[quantiles], 0, len(cases))
	for _, c := range cases {
		trials = append(trials, Trial[quantiles]{
			Name: c.name,
			Run: func() (quantiles, error) {
				p50, p99, err := run(c.w)
				return quantiles{p50, p99}, err
			},
		})
	}
	res, err := Sweep(cfg, trials)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   fmt.Sprintf("A1 — price-weight ablation, hotspot load on %d nodes (2 hot)", n),
		Columns: []string{"pricing", "FCT p50 (us)", "FCT p99 (us)"},
	}
	for i, c := range cases {
		t.AddRow(c.name, us(res[i].p50), us(res[i].p99))
	}
	t.AddNote("when the hot endpoints' own links are the bottleneck, no re-routing can create capacity:")
	t.AddNote("the ablation isolates how each price term shifts the tail around that floor (congestion pricing")
	t.AddNote("does most of the useful work; latency-only pricing reacts too slowly to help)")
	return t, nil
}

// A2 ablates the bypass policy: elephants with and without the express
// channels of PLP #2, CRC otherwise identical. The paper frames bypass as
// "pre-fetching at the physical layer"; the elephant completion times are
// where it pays.
func A2(cfg Config) (*Table, error) {
	scale := cfg.Scale
	side := scale.pick(4, 6)
	elephantBytes := int64(scale.pick(8e6, 64e6))
	n := side * side

	run := func(bypass bool) (sim.Duration, int, error) {
		g := topo.NewGrid(side, side, topo.Options{LanesPerLink: 2})
		eng, f, err := buildFabric(g, 81)
		if err != nil {
			return 0, 0, err
		}
		cfg := ringctl.DefaultConfig()
		cfg.Epoch = 50 * sim.Microsecond
		cfg.EnableReconfig, cfg.EnablePower, cfg.EnableFEC = false, false, false
		// Price-driven re-routing is ablated out on both arms: with it on,
		// the mice would discover the cheap express edge and dilute the
		// elephant's dedicated lane — a real interaction, but A3's story;
		// this table isolates PLP #2. Shortest-path routing still adopts
		// the express for the elephant (one hop beats six).
		cfg.EnableRouting = false
		cfg.EnableBypass = bypass
		ctl := ringctl.New(eng, f, cfg)
		ctl.Start()
		_ = eng
		_ = ctl

		// One elephant crosses the rack through sustained cross traffic:
		// streams of medium flows occupy every interior link for the
		// elephant's whole lifetime, crushing its shared-path fair share
		// while staying individually smaller than the elephant (so the
		// elephant tops the CRC's flow ranking). This is the regime
		// where a dedicated express lane beats the congested bundle and
		// σ* comes out positive — the physical-layer pre-fetch the paper
		// describes.
		at := func(x, y int) int { return y*side + x }
		specs := []workload.FlowSpec{
			{Src: 0, Dst: n - 1, Bytes: elephantBytes, Label: "elephant"},
		}
		stream := func(src, dst int) {
			const every = 30 * sim.Microsecond
			window := sim.Duration(scale.pick(8, 20)) * sim.Millisecond
			for at := sim.Time(0); at < sim.Time(window); at = at.Add(every) {
				specs = append(specs, workload.FlowSpec{
					Src: src, Dst: dst, Bytes: 128e3, At: at, Label: "bg",
				})
			}
		}
		for x := 0; x < side; x++ {
			stream(at(x, 0), at(x, side-1))
			stream(at(x, 1), at(x, side-1))
		}
		for y := 0; y < side; y++ {
			stream(at(0, y), at(side-1, y))
			stream(at(1, y), at(side-1, y))
		}
		flows, err := f.InjectFlows(specs)
		if err != nil {
			return 0, 0, err
		}
		if err := f.RunUntilDone(sim.Time(60 * sim.Second)); err != nil {
			return 0, 0, err
		}
		express := 0
		for _, e := range g.Edges() {
			if e.Express {
				express++
			}
		}
		return flows[0].FCT(), express, nil
	}

	type arm struct {
		fct      sim.Duration
		channels int
	}
	res, err := Sweep(cfg, []Trial[arm]{
		{Name: "no-bypass", Run: func() (arm, error) {
			fct, ch, err := run(false)
			return arm{fct, ch}, err
		}},
		{Name: "bypass", Run: func() (arm, error) {
			fct, ch, err := run(true)
			return arm{fct, ch}, err
		}},
	})
	if err != nil {
		return nil, err
	}
	without, with, channels := res[0].fct, res[1].fct, res[1].channels

	t := &Table{
		Title:   fmt.Sprintf("A2 — bypass ablation: %d MB elephant through cross traffic, %d nodes", elephantBytes/1e6, n),
		Columns: []string{"configuration", "elephant FCT (ms)", "express channels built"},
	}
	t.AddRow("CRC without bypass", ms(without), "0")
	t.AddRow("CRC with bypass (PLP #2)", ms(with), fmt.Sprintf("%d", channels))
	t.AddRow("elephant speedup", pct(float64(with), float64(without)), "")
	t.AddNote("bypass provisions a dedicated express lane once the elephant's remaining bytes clear σ*")
	return t, nil
}
