package experiment

import (
	"strconv"
	"strings"
	"testing"
)

// parse helpers for asserting on rendered cells.

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	cell = strings.TrimSuffix(strings.TrimSpace(cell), "x")
	cell = strings.TrimSuffix(cell, "%")
	cell = strings.TrimPrefix(cell, "+")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "b"}}
	tab.AddRow("1", "hello")
	tab.AddNote("n=%d", 5)
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T", "a", "hello", "note: n=5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	var csv strings.Builder
	if err := tab.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "a,b\n1,hello\n") {
		t.Fatalf("csv = %q", csv.String())
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.AddRow("only-one")
}

func TestRegistry(t *testing.T) {
	if len(IDs()) != 15 {
		t.Fatalf("experiments = %d, want 15", len(IDs()))
	}
	if _, ok := Lookup("fig1"); !ok {
		t.Fatal("fig1 missing")
	}
	if _, ok := Lookup("bogus"); ok {
		t.Fatal("bogus found")
	}
	if len(List()) != 15 {
		t.Fatal("List size")
	}
}

func TestFig1Shape(t *testing.T) {
	tab, err := Fig1(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		media := cellFloat(t, row[2])
		switching := cellFloat(t, row[3])
		measured := cellFloat(t, row[4])
		// The paper's claim: switching dominates media at rack scale.
		if switching <= media*10 {
			t.Fatalf("switching (%v) does not dominate media (%v)", switching, media)
		}
		// The simulator must agree with the analytic switching series
		// within the serialization/propagation residue.
		if measured < switching {
			t.Fatalf("measured (%v) below analytic switching floor (%v)", measured, switching)
		}
		if measured > switching+media+2000 {
			t.Fatalf("measured (%v) far above model (%v)", measured, switching+media)
		}
	}
	// Cumulative series must be monotone.
	for i := 1; i < len(tab.Rows); i++ {
		if cellFloat(t, tab.Rows[i][3]) <= cellFloat(t, tab.Rows[i-1][3]) {
			t.Fatal("switching series not monotone")
		}
	}
}

func TestFig2Shape(t *testing.T) {
	tab, err := Fig2(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	get := func(metric string) (float64, float64) {
		for _, row := range tab.Rows {
			if row[0] == metric {
				return cellFloat(t, row[1]), cellFloat(t, row[2])
			}
		}
		t.Fatalf("metric %q missing", metric)
		return 0, 0
	}
	gridHops, torusHops := get("mean hops")
	if torusHops >= gridHops {
		t.Fatalf("reconfiguration did not cut hops: %v → %v", gridHops, torusHops)
	}
	gridP50, torusP50 := get("frame latency p50 (us)")
	if torusP50 >= gridP50 {
		t.Fatalf("reconfiguration did not cut p50 latency: %v → %v", gridP50, torusP50)
	}
	gridPwr, torusPwr := get("peak power (W)")
	if torusPwr > gridPwr*1.01 {
		t.Fatalf("reconfiguration exceeded the power envelope: %v → %v", gridPwr, torusPwr)
	}
}

func TestE3Shape(t *testing.T) {
	tab, err := E3(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	healthy := cellFloat(t, tab.Rows[0][1])
	static := cellFloat(t, tab.Rows[1][1])
	adaptive := cellFloat(t, tab.Rows[2][1])
	if static <= healthy {
		t.Fatalf("slow link did not hurt: healthy %v, static %v", healthy, static)
	}
	if adaptive >= static {
		t.Fatalf("CRC did not help: static %v, adaptive %v", static, adaptive)
	}
}

func TestE4Shape(t *testing.T) {
	tab, err := E4(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	var finalFree, finalCapped float64
	var shed float64
	for _, row := range tab.Rows {
		switch row[0] {
		case "final power (W)":
			finalFree = cellFloat(t, row[1])
			finalCapped = cellFloat(t, row[2])
		case "power commands issued":
			shed = cellFloat(t, row[2])
		}
	}
	if finalCapped >= finalFree {
		t.Fatalf("capping did not reduce final power: %v vs %v", finalCapped, finalFree)
	}
	if shed == 0 {
		t.Fatal("no power commands issued under the cap")
	}
}

func TestE5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("σ* sweep takes seconds of packet-engine work; skipped in -short (race) mode")
	}
	tab, err := E5(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	if first[3] != "switched" {
		t.Fatalf("smallest probe should prefer the switched path: %v", first)
	}
	if last[3] != "express" {
		t.Fatalf("largest probe should prefer the express path: %v", last)
	}
}

func TestE6Shape(t *testing.T) {
	tab, err := E6(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	// Clean row: adaptive stays on none.
	clean := tab.Rows[0]
	if clean[4] != "none" {
		t.Fatalf("clean link adaptive profile = %s", clean[4])
	}
	// Noisiest row: adaptive escalated and beats none.
	noisy := tab.Rows[len(tab.Rows)-1]
	if noisy[4] == "none" {
		t.Fatal("noisy link never escalated FEC")
	}
	noneFct := cellFloat(t, strings.Split(noisy[1], "/")[0])
	adFct := cellFloat(t, strings.Split(noisy[3], "/")[0])
	if adFct >= noneFct {
		t.Fatalf("adaptive (%v) not better than none (%v) at worst BER", adFct, noneFct)
	}
}

func TestE9Shape(t *testing.T) {
	tab, err := E9(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	noneRetx := cellFloat(t, tab.Rows[0][2])
	rsRetx := cellFloat(t, tab.Rows[1][2])
	adRetx := cellFloat(t, tab.Rows[2][2])
	if noneRetx == 0 {
		t.Fatal("bursty channel produced no retransmits without FEC")
	}
	if rsRetx > noneRetx/10 {
		t.Fatalf("fixed RS retx %v not far below none %v", rsRetx, noneRetx)
	}
	if adRetx >= noneRetx {
		t.Fatalf("adaptive retx %v not below none %v", adRetx, noneRetx)
	}
	// Adaptive must actually switch profiles on a bursty channel.
	if cellFloat(t, tab.Rows[2][3]) == 0 {
		t.Fatal("adaptive never switched FEC")
	}
	// Adaptive total time must beat the worse of the two fixed points.
	noneT := cellFloat(t, tab.Rows[0][1])
	rsT := cellFloat(t, tab.Rows[1][1])
	adT := cellFloat(t, tab.Rows[2][1])
	worstFixed := noneT
	if rsT > worstFixed {
		worstFixed = rsT
	}
	if adT >= worstFixed {
		t.Fatalf("adaptive (%v) no better than the worst fixed point (%v)", adT, worstFixed)
	}
	// The sticky dwell must flap far less than the default and land
	// within 15% of the fixed-RS time on this channel.
	adSwitches := cellFloat(t, tab.Rows[2][3])
	stickySwitches := cellFloat(t, tab.Rows[3][3])
	if stickySwitches >= adSwitches {
		t.Fatalf("sticky dwell switches %v not below default %v", stickySwitches, adSwitches)
	}
	stickyT := cellFloat(t, tab.Rows[3][1])
	if stickyT > rsT*1.15 {
		t.Fatalf("sticky adaptive (%v) not within 15%% of fixed RS (%v)", stickyT, rsT)
	}
}

func TestE7Shape(t *testing.T) {
	tab, err := E7(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if err := cellFloat(t, strings.TrimSuffix(row[3], "%")); err > 5 {
			t.Fatalf("hops %s: mean error %v%% exceeds validation bar", row[0], err)
		}
	}
}

func TestE8Shape(t *testing.T) {
	tab, err := E8(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in grid/torus pairs per size; torus must win mean FCT.
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		grid := cellFloat(t, tab.Rows[i][2])
		torus := cellFloat(t, tab.Rows[i+1][2])
		if torus >= grid {
			t.Fatalf("nodes %s: torus FCT %v not better than grid %v", tab.Rows[i][0], torus, grid)
		}
	}
	// Cross-check note must report a small delta.
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "cross-check") {
			found = true
		}
	}
	if !found {
		t.Fatal("cross-check note missing")
	}
}

func TestA1Runs(t *testing.T) {
	tab, err := A1(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if cellFloat(t, row[2]) <= 0 {
			t.Fatalf("non-positive p99 in %v", row)
		}
	}
}

func TestA3Shape(t *testing.T) {
	tab, err := A3(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// VLB's defining cost: roughly doubled mean hops vs shortest path.
	sp := cellFloat(t, tab.Rows[0][3])
	vlb := cellFloat(t, tab.Rows[1][3])
	if vlb < sp*1.3 {
		t.Fatalf("VLB mean hops %v not meaningfully above shortest-path %v", vlb, sp)
	}
	// Every discipline must complete the permutation.
	for _, row := range tab.Rows {
		if cellFloat(t, row[1]) <= 0 {
			t.Fatalf("non-positive JCT in %v", row)
		}
	}
}

func TestA2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("bypass ablation takes seconds of packet-engine work; skipped in -short (race) mode")
	}
	tab, err := A2(At(Quick))
	if err != nil {
		t.Fatal(err)
	}
	without := cellFloat(t, tab.Rows[0][1])
	with := cellFloat(t, tab.Rows[1][1])
	channels := cellFloat(t, tab.Rows[1][2])
	if channels == 0 {
		t.Fatal("bypass policy built no express channels")
	}
	if with >= without {
		t.Fatalf("bypass did not speed elephants: %v vs %v", with, without)
	}
}
