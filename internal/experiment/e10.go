package experiment

import (
	"fmt"
	"sort"

	"rackfab/internal/faults"
	"rackfab/internal/fluid"
	"rackfab/internal/sim"
	"rackfab/internal/telemetry"
	"rackfab/internal/topo"
	"rackfab/internal/workload"
)

// e10Cell is one churn trial reduced to engine-neutral scalars: the same
// permutation workload run fault-free (baseline) and under a deterministic
// fault schedule (churn), on either engine, plus the schedule's shape and
// the solver's warm-start telemetry (fluid rungs only).
type e10Cell struct {
	baseMean, churnMean sim.Duration
	baseP99, churnP99   sim.Duration
	baseJCT, churnJCT   sim.Duration
	reroutes, starved   int64
	starvedTime         sim.Duration
	flaps               int
	warmPct             float64
	packet              bool
}

// e10Schedule derives the churn timeline from a baseline JCT so flaps land
// mid-traffic at every scale: eight Poisson link flaps spread across the
// first half of the run plus one node-loss pulse on the fabric's center
// node (all of whose flows must starve until the node returns). Pure
// function of the per-rung seed — byte-identical at any worker count.
func e10Schedule(kind string, side int, g *topo.Graph, jct sim.Duration) (*faults.Schedule, int) {
	const flapPulses = 8
	sched := faults.PoissonFlaps(sim.NewRNG(int64(side)*1009+int64(len(kind))), g, faults.FlapConfig{
		Flaps:      flapPulses,
		Start:      sim.Time(jct / 20),
		MeanGap:    jct / 16,
		MeanOutage: jct / 10,
	})
	center := g.NodeAt(side/2, side/2)
	sched = sched.Merge(faults.New(
		faults.Event{At: sim.Time(jct / 10 * 3), Target: int(center), Kind: faults.NodeDown},
		faults.Event{At: sim.Time(jct / 10 * 4), Target: int(center), Kind: faults.NodeUp},
	))
	return sched, flapPulses
}

func e10Graph(kind string, side int) *topo.Graph {
	if kind == "grid" {
		return topo.NewGrid(side, side, topo.Options{})
	}
	return topo.NewTorus(side, side, topo.Options{})
}

// e10Rung runs one fluid churn trial.
func e10Rung(kind string, side int) (e10Cell, error) {
	g := e10Graph(kind, side)
	rng := sim.NewRNG(int64(side) * 31)
	specs := workload.Permutation(rng, side*side, workload.Fixed(1e6))

	base, err := fluid.Run(fluid.Config{Graph: g}, specs)
	if err != nil {
		return e10Cell{}, fmt.Errorf("%s/%d baseline: %w", kind, side*side, err)
	}
	if len(base.Flows) == 0 {
		return e10Cell{}, fmt.Errorf("%s/%d baseline: %w", kind, side*side, ErrNoCompletedFlows)
	}

	sched, flapPulses := e10Schedule(kind, side, g, base.JCT)
	reg := telemetry.NewRegistry()
	sm := fluid.NewSolverMetrics(reg)
	churn, err := fluid.Run(fluid.Config{Graph: g, Faults: sched, Metrics: sm}, specs)
	if err != nil {
		return e10Cell{}, fmt.Errorf("%s/%d churn: %w", kind, side*side, err)
	}
	if len(churn.Flows) == 0 {
		return e10Cell{}, fmt.Errorf("%s/%d churn: %w", kind, side*side, ErrNoCompletedFlows)
	}
	return e10Cell{
		baseMean: base.MeanFCT, churnMean: churn.MeanFCT,
		baseP99: base.P99FCT, churnP99: churn.P99FCT,
		baseJCT: base.JCT, churnJCT: churn.JCT,
		reroutes: churn.Faults.Reroutes, starved: churn.Faults.StarvedEpisodes,
		starvedTime: churn.Faults.StarvedTime,
		flaps:       flapPulses, warmPct: sm.WarmHitPct(),
	}, nil
}

// e10PacketRung runs the churn trial on the packet engine: the identical
// permutation and schedule construction, with the baseline's own packet
// JCT anchoring the fault timeline. Frame-train batching (16 frames per
// event) plus the calendar queue are what make this rung affordable — at
// Full scale it carries the 1024-node fabric the issue tracker's fidelity
// ladder asks for.
func e10PacketRung(kind string, side int) (e10Cell, error) {
	run := func(sched *faults.Schedule) (mean, p99, jct sim.Duration, reroutes, starved int64, starvedTime sim.Duration, err error) {
		g := e10Graph(kind, side)
		rng := sim.NewRNG(int64(side) * 31)
		specs := workload.Permutation(rng, side*side, workload.Fixed(1e6))
		_, f, err := buildFabric(g, int64(side)*31)
		if err != nil {
			return 0, 0, 0, 0, 0, 0, err
		}
		f.SetFrameTrains(16)
		if sched != nil {
			if _, err := f.ScheduleFaults(sched, nil); err != nil {
				return 0, 0, 0, 0, 0, 0, err
			}
		}
		flows, err := f.InjectFlows(specs)
		if err != nil {
			return 0, 0, 0, 0, 0, 0, err
		}
		if err := f.RunUntilDone(sim.Time(60 * sim.Second)); err != nil {
			return 0, 0, 0, 0, 0, 0, err
		}
		fcts := make([]sim.Duration, 0, len(flows))
		var sum sim.Duration
		var earliest, latest sim.Time
		for i, flw := range flows {
			if !flw.Done() || flw.Failed() {
				return 0, 0, 0, 0, 0, 0, fmt.Errorf("packet %s/%d: flow %d unfinished", kind, side*side, i)
			}
			d := flw.FCT()
			fcts = append(fcts, d)
			sum += d
			end := flw.Started().Add(d)
			if i == 0 || flw.Started().Before(earliest) {
				earliest = flw.Started()
			}
			if end.After(latest) {
				latest = end
			}
		}
		if len(fcts) == 0 {
			return 0, 0, 0, 0, 0, 0, fmt.Errorf("packet %s/%d: %w", kind, side*side, ErrNoCompletedFlows)
		}
		sort.Slice(fcts, func(i, j int) bool { return fcts[i] < fcts[j] })
		fs := f.FaultStats()
		return sum / sim.Duration(len(fcts)), fcts[fluid.NearestRank(len(fcts), 99)],
			latest.Sub(earliest), fs.Reroutes, fs.StarvedEpisodes, fs.StarvedTime, nil
	}

	baseMean, baseP99, baseJCT, _, _, _, err := run(nil)
	if err != nil {
		return e10Cell{}, err
	}
	g := e10Graph(kind, side)
	sched, flapPulses := e10Schedule(kind, side, g, baseJCT)
	churnMean, churnP99, churnJCT, reroutes, starved, starvedTime, err := run(sched)
	if err != nil {
		return e10Cell{}, err
	}
	return e10Cell{
		baseMean: baseMean, churnMean: churnMean,
		baseP99: baseP99, churnP99: churnP99,
		baseJCT: baseJCT, churnJCT: churnJCT,
		reroutes: reroutes, starved: starved, starvedTime: starvedTime,
		flaps: flapPulses, packet: true,
	}, nil
}

// E10 is the churn experiment: the fabric's *adaptive* claim made
// measurable. The same random permutation that E8 scales runs twice per
// rung — on a healthy fabric and under Poisson link flaps plus a node-loss
// pulse — and the table reports what the churn cost: throughput
// degradation (JCT-relative goodput), P99 FCT inflation, mean service
// recovery time per starvation episode (0 when an immediate reroute around
// the failure existed, the outage length when flows had to wait for the
// repair), reroute/starvation counts, and the warm-start oracle's hit rate
// under capacity perturbation. Full scale carries the 1024- and 4096-node
// fluid rungs (32×32 / 64×64) plus 1024-node *packet* rungs on both grid
// and torus — the frame-level fidelity anchors the calendar-queue engine
// and frame-train batching make affordable; Quick stays CI-sized with
// 64-node packet rungs exercising the same path.
func E10(cfg Config) (*Table, error) {
	sides := []int{8, 16}
	packetSide := 8
	if cfg.Scale == Full {
		sides = []int{32, 64}
		packetSide = 32
	}
	kinds := []string{"grid", "torus"}
	trials := make([]Trial[e10Cell], 0, (len(sides)+1)*len(kinds))
	for _, side := range sides {
		for _, kind := range kinds {
			side, kind := side, kind
			trials = append(trials, Trial[e10Cell]{
				Name: fmt.Sprintf("%s/%d", kind, side*side),
				Run:  func() (e10Cell, error) { return e10Rung(kind, side) },
			})
		}
	}
	// The packet rung runs both fabric shapes: the torus arm PR 6 opened
	// plus the grid arm that completes the fluid-vs-packet differential
	// story at the same scale (a grid's edge effects concentrate churn on
	// fewer detours, the harder case for the repair path).
	for _, kind := range kinds {
		kind := kind
		trials = append(trials, Trial[e10Cell]{
			Name: fmt.Sprintf("packet-%s/%d", kind, packetSide*packetSide),
			Run:  func() (e10Cell, error) { return e10PacketRung(kind, packetSide) },
		})
	}
	cells, err := Sweep(cfg, trials)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "E10 — churn: permutation under Poisson link flaps + node loss",
		Columns: []string{
			"nodes", "topology", "engine", "flaps",
			"base mean FCT (us)", "churn mean FCT (us)",
			"thr degr (%)", "p99 infl (%)", "recovery (us)",
			"reroutes", "starved", "warm fills (%)",
		},
	}
	i := 0
	addRow := func(side int, kind string, c e10Cell) {
		engine := "fluid"
		warm := fmt.Sprintf("%.1f", c.warmPct)
		if c.packet {
			engine, warm = "packet", "-"
		}
		thrDegr := (1 - float64(c.baseJCT)/float64(c.churnJCT)) * 100
		p99Infl := (float64(c.churnP99)/float64(c.baseP99) - 1) * 100
		recovery := 0.0
		if c.starved > 0 {
			recovery = (c.starvedTime / sim.Duration(c.starved)).Microseconds()
		}
		t.AddRow(
			fmt.Sprintf("%d", side*side), kind, engine,
			fmt.Sprintf("%d", c.flaps),
			us(c.baseMean), us(c.churnMean),
			fmt.Sprintf("%.1f", thrDegr),
			fmt.Sprintf("%.1f", p99Infl),
			fmt.Sprintf("%.2f", recovery),
			fmt.Sprintf("%d", c.reroutes),
			fmt.Sprintf("%d", c.starved),
			warm,
		)
	}
	for _, side := range sides {
		for _, kind := range kinds {
			addRow(side, kind, cells[i])
			i++
		}
	}
	for _, kind := range kinds {
		addRow(packetSide, kind, cells[i])
		i++
	}
	t.AddNote("each rung runs the identical permutation twice: healthy baseline, then under 8 Poisson link")
	t.AddNote("flaps (outage ~JCT/10) plus a node-loss pulse on the center node; the schedule is derived")
	t.AddNote("from the baseline JCT so churn always lands mid-traffic, and is byte-replayable from its seed")
	t.AddNote("thr degr = 1 − JCT_base/JCT_churn; recovery = mean starved time per episode (0 when every")
	t.AddNote("affected flow rerouted instantly); warm fills = refills the warm-start oracle replayed end to end")
	t.AddNote("negative degradation is real, not noise: a flap forces flows off the permutation's hot links,")
	t.AddNote("the VLB-like spreading the A3 ablation measures — adaptivity can beat a healthy-but-greedy fabric")
	t.AddNote("the packet rungs (grid + torus) replay the same churn construction frame by frame (trains of")
	t.AddNote("16) — the calendar-queue engine's fidelity anchors; fault columns from the fabric's accounting")
	return t, nil
}
