package experiment

import (
	"fmt"

	"rackfab/internal/faults"
	"rackfab/internal/fluid"
	"rackfab/internal/sim"
	"rackfab/internal/telemetry"
	"rackfab/internal/topo"
	"rackfab/internal/workload"
)

// e10Cell is one churn trial: the same permutation workload run fault-free
// (baseline) and under a deterministic fault schedule (churn), plus the
// schedule's shape and the solver's telemetry for the churn run.
type e10Cell struct {
	base, churn *fluid.Result
	flaps       int
	warmPct     float64
}

// e10Rung runs one churn trial. The fault timeline is derived from the
// baseline run's own JCT, so flaps land mid-traffic at every scale: eight
// Poisson link flaps spread across the first half of the run plus one
// node-loss pulse on the fabric's center node (all of whose flows must
// starve until the node returns). Both the workload and the schedule are
// pure functions of per-rung seeds — byte-identical at any worker count.
func e10Rung(kind string, side int) (e10Cell, error) {
	var g *topo.Graph
	if kind == "grid" {
		g = topo.NewGrid(side, side, topo.Options{})
	} else {
		g = topo.NewTorus(side, side, topo.Options{})
	}
	rng := sim.NewRNG(int64(side) * 31)
	specs := workload.Permutation(rng, side*side, workload.Fixed(1e6))

	base, err := fluid.Run(fluid.Config{Graph: g}, specs)
	if err != nil {
		return e10Cell{}, fmt.Errorf("%s/%d baseline: %w", kind, side*side, err)
	}
	if len(base.Flows) == 0 {
		return e10Cell{}, fmt.Errorf("%s/%d baseline: %w", kind, side*side, ErrNoCompletedFlows)
	}

	jct := base.JCT
	const flapPulses = 8
	sched := faults.PoissonFlaps(sim.NewRNG(int64(side)*1009+int64(len(kind))), g, faults.FlapConfig{
		Flaps:      flapPulses,
		Start:      sim.Time(jct / 20),
		MeanGap:    jct / 16,
		MeanOutage: jct / 10,
	})
	center := g.NodeAt(side/2, side/2)
	sched = sched.Merge(faults.New(
		faults.Event{At: sim.Time(jct / 10 * 3), Target: int(center), Kind: faults.NodeDown},
		faults.Event{At: sim.Time(jct / 10 * 4), Target: int(center), Kind: faults.NodeUp},
	))

	reg := telemetry.NewRegistry()
	sm := fluid.NewSolverMetrics(reg)
	churn, err := fluid.Run(fluid.Config{Graph: g, Faults: sched, Metrics: sm}, specs)
	if err != nil {
		return e10Cell{}, fmt.Errorf("%s/%d churn: %w", kind, side*side, err)
	}
	if len(churn.Flows) == 0 {
		return e10Cell{}, fmt.Errorf("%s/%d churn: %w", kind, side*side, ErrNoCompletedFlows)
	}
	return e10Cell{base: base, churn: churn, flaps: flapPulses, warmPct: sm.WarmHitPct()}, nil
}

// E10 is the churn experiment: the fabric's *adaptive* claim made
// measurable. The same random permutation that E8 scales runs twice per
// rung — on a healthy fabric and under Poisson link flaps plus a node-loss
// pulse — and the table reports what the churn cost: throughput
// degradation (JCT-relative goodput), P99 FCT inflation, mean service
// recovery time per starvation episode (0 when an immediate reroute around
// the failure existed, the outage length when flows had to wait for the
// repair), reroute/starvation counts, and the warm-start oracle's hit rate
// under capacity perturbation. Full scale carries the 1024- and 4096-node
// rungs (32×32 / 64×64); Quick stays CI-sized.
func E10(cfg Config) (*Table, error) {
	sides := []int{8, 16}
	if cfg.Scale == Full {
		sides = []int{32, 64}
	}
	kinds := []string{"grid", "torus"}
	trials := make([]Trial[e10Cell], 0, len(sides)*len(kinds))
	for _, side := range sides {
		for _, kind := range kinds {
			side, kind := side, kind
			trials = append(trials, Trial[e10Cell]{
				Name: fmt.Sprintf("%s/%d", kind, side*side),
				Run:  func() (e10Cell, error) { return e10Rung(kind, side) },
			})
		}
	}
	cells, err := Sweep(cfg, trials)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "E10 — churn: permutation under Poisson link flaps + node loss (fluid engine)",
		Columns: []string{
			"nodes", "topology", "flaps",
			"base mean FCT (us)", "churn mean FCT (us)",
			"thr degr (%)", "p99 infl (%)", "recovery (us)",
			"reroutes", "starved", "warm fills (%)",
		},
	}
	i := 0
	for _, side := range sides {
		for _, kind := range kinds {
			c := cells[i]
			i++
			thrDegr := (1 - float64(c.base.JCT)/float64(c.churn.JCT)) * 100
			p99Infl := (float64(c.churn.P99FCT)/float64(c.base.P99FCT) - 1) * 100
			recovery := 0.0
			if c.churn.Faults.StarvedEpisodes > 0 {
				recovery = (c.churn.Faults.StarvedTime / sim.Duration(c.churn.Faults.StarvedEpisodes)).Microseconds()
			}
			t.AddRow(
				fmt.Sprintf("%d", side*side), kind,
				fmt.Sprintf("%d", c.flaps),
				us(c.base.MeanFCT), us(c.churn.MeanFCT),
				fmt.Sprintf("%.1f", thrDegr),
				fmt.Sprintf("%.1f", p99Infl),
				fmt.Sprintf("%.2f", recovery),
				fmt.Sprintf("%d", c.churn.Faults.Reroutes),
				fmt.Sprintf("%d", c.churn.Faults.StarvedEpisodes),
				fmt.Sprintf("%.1f", c.warmPct),
			)
		}
	}
	t.AddNote("each rung runs the identical permutation twice: healthy baseline, then under 8 Poisson link")
	t.AddNote("flaps (outage ~JCT/10) plus a node-loss pulse on the center node; the schedule is derived")
	t.AddNote("from the baseline JCT so churn always lands mid-traffic, and is byte-replayable from its seed")
	t.AddNote("thr degr = 1 − JCT_base/JCT_churn; recovery = mean starved time per episode (0 when every")
	t.AddNote("affected flow rerouted instantly); warm fills = refills the warm-start oracle replayed end to end")
	t.AddNote("negative degradation is real, not noise: a flap forces flows off the permutation's hot links,")
	t.AddNote("the VLB-like spreading the A3 ablation measures — adaptivity can beat a healthy-but-greedy fabric")
	return t, nil
}
