package switching

import (
	"testing"

	"rackfab/internal/sim"
)

// harness wires a switch to scripted callbacks.
type harness struct {
	eng     *sim.Engine
	sw      *Switch
	sent    []sentRec
	dropped []string
	paused  map[int][]bool
	forward func(f *Frame) (int, bool)
	txTime  sim.Duration
}

type sentRec struct {
	port int
	id   uint64
	at   sim.Time
}

func newHarness(ports int, cfg Config) *harness {
	h := &harness{eng: sim.New(), paused: map[int][]bool{}, txTime: 100 * sim.Nanosecond}
	h.forward = func(f *Frame) (int, bool) { return f.DstNode % ports, true }
	cfg.Ports = ports
	h.sw = New(0, h.eng, cfg, Callbacks{
		Forward: func(f *Frame) (int, bool) { return h.forward(f) },
		TxTime:  func(port int, f *Frame) sim.Duration { return h.txTime },
		Transmit: func(port int, f *Frame) {
			h.sent = append(h.sent, sentRec{port, f.ID, h.eng.Now()})
		},
		Drop:  func(f *Frame, reason string) { h.dropped = append(h.dropped, reason) },
		Pause: func(port int, p bool) { h.paused[port] = append(h.paused[port], p) },
	})
	return h
}

func frame(id uint64, dst int) *Frame {
	return &Frame{ID: id, DstNode: dst, DataBits: 12000, FlowID: id}
}

func TestSingleFrameLatency(t *testing.T) {
	cfg := DefaultConfig(4)
	h := newHarness(4, cfg)
	h.eng.At(0, "inject", func() { h.sw.Inject(0, frame(1, 1)) })
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != 1 {
		t.Fatalf("sent %d frames", len(h.sent))
	}
	// An uncontended frame leaves exactly one pipeline latency after inject.
	if h.sent[0].at != sim.Time(cfg.PipelineLatency) {
		t.Fatalf("egress at %v, want %v", h.sent[0].at, cfg.PipelineLatency)
	}
}

func TestOutputSerializesInOrder(t *testing.T) {
	h := newHarness(4, DefaultConfig(4))
	h.eng.At(0, "inject", func() {
		h.sw.Inject(0, frame(1, 1))
		h.sw.Inject(0, frame(2, 1))
		h.sw.Inject(0, frame(3, 1))
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != 3 {
		t.Fatalf("sent %d", len(h.sent))
	}
	// Same input, same output: FIFO, spaced by txTime.
	for i := 1; i < 3; i++ {
		if h.sent[i].id != uint64(i+1) {
			t.Fatalf("order broken: %v", h.sent)
		}
		gap := h.sent[i].at.Sub(h.sent[i-1].at)
		if gap != 100*sim.Nanosecond {
			t.Fatalf("gap %v, want txTime", gap)
		}
	}
}

func TestDistinctOutputsParallel(t *testing.T) {
	h := newHarness(4, DefaultConfig(4))
	h.eng.At(0, "inject", func() {
		h.sw.Inject(0, frame(1, 1))
		h.sw.Inject(1, frame(2, 2))
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != 2 {
		t.Fatalf("sent %d", len(h.sent))
	}
	// No head-of-line blocking across outputs: both leave at pipeline time.
	if h.sent[0].at != h.sent[1].at {
		t.Fatalf("outputs serialized: %v", h.sent)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	h := newHarness(4, DefaultConfig(4))
	// Two inputs contend for output 1 with two frames each.
	h.eng.At(0, "inject", func() {
		h.sw.Inject(0, frame(10, 1))
		h.sw.Inject(0, frame(11, 1))
		h.sw.Inject(2, frame(20, 1))
		h.sw.Inject(2, frame(21, 1))
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != 4 {
		t.Fatalf("sent %d", len(h.sent))
	}
	// Round robin must interleave the inputs rather than draining one.
	first := h.sent[0].id / 10
	second := h.sent[1].id / 10
	if first == second {
		t.Fatalf("arbiter drained one input: %v", h.sent)
	}
}

func TestNoRouteDrops(t *testing.T) {
	h := newHarness(4, DefaultConfig(4))
	h.forward = func(f *Frame) (int, bool) { return 0, false }
	h.eng.At(0, "inject", func() { h.sw.Inject(0, frame(1, 1)) })
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(h.dropped) != 1 || h.dropped[0] != "no-route" {
		t.Fatalf("drops = %v", h.dropped)
	}
	if h.sw.Stats().Dropped.Value() != 1 {
		t.Fatal("drop not counted")
	}
}

func TestVOQOverflowDrops(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.VOQCapacity = 4
	cfg.PauseHighWatermark = 3
	cfg.PauseLowWatermark = 1
	h := newHarness(2, cfg)
	h.txTime = 10 * sim.Microsecond // slow drain
	h.eng.At(0, "inject", func() {
		for i := 0; i < 10; i++ {
			h.sw.Inject(0, frame(uint64(i), 1))
		}
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	overflow := 0
	for _, r := range h.dropped {
		if r == "voq-overflow" {
			overflow++
		}
	}
	if overflow != 6 {
		t.Fatalf("overflow drops = %d, want 6 (cap 4)", overflow)
	}
}

func TestPauseWatermarks(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.VOQCapacity = 16
	cfg.PauseHighWatermark = 4
	cfg.PauseLowWatermark = 2
	h := newHarness(2, cfg)
	h.txTime = sim.Microsecond
	h.eng.At(0, "inject", func() {
		for i := 0; i < 6; i++ {
			h.sw.Inject(0, frame(uint64(i), 1))
		}
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	events := h.paused[0]
	if len(events) < 2 {
		t.Fatalf("pause events = %v", events)
	}
	if events[0] != true {
		t.Fatal("first event should pause")
	}
	if events[len(events)-1] != false {
		t.Fatal("should resume after draining")
	}
}

func TestOutputPauseHolds(t *testing.T) {
	h := newHarness(2, DefaultConfig(2))
	h.eng.At(0, "setup", func() {
		h.sw.SetOutputPaused(1, true)
		h.sw.Inject(0, frame(1, 1))
	})
	h.eng.At(sim.Time(50*sim.Microsecond), "release", func() {
		h.sw.SetOutputPaused(1, false)
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != 1 {
		t.Fatalf("sent %d", len(h.sent))
	}
	if h.sent[0].at != sim.Time(50*sim.Microsecond) {
		t.Fatalf("frame left at %v despite pause until 50us", h.sent[0].at)
	}
}

func TestQueueDelayStats(t *testing.T) {
	h := newHarness(2, DefaultConfig(2))
	h.eng.At(0, "inject", func() {
		h.sw.Inject(0, frame(1, 1))
		h.sw.Inject(0, frame(2, 1))
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := h.sw.Stats()
	if st.Forwarded.Value() != 2 {
		t.Fatalf("forwarded = %d", st.Forwarded.Value())
	}
	// The second frame waited at least one txTime.
	if st.QueueDelay.Max() < int64(100*sim.Nanosecond) {
		t.Fatalf("max queue delay = %d", st.QueueDelay.Max())
	}
}

func TestPauseWatchdogBreaksDeadlock(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.PauseWatchdog = 20 * sim.Microsecond
	h := newHarness(2, cfg)
	h.eng.At(0, "setup", func() {
		// Downstream never releases: without the watchdog this frame
		// would be stranded forever (the PFC circular-wait pattern).
		h.sw.SetOutputPaused(1, true)
		h.sw.Inject(0, frame(1, 1))
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != 1 {
		t.Fatalf("sent %d frames; watchdog never fired", len(h.sent))
	}
	if h.sent[0].at != sim.Time(20*sim.Microsecond) {
		t.Fatalf("watchdog released at %v, want 20us", h.sent[0].at)
	}
	if h.sw.WatchdogTrips() != 1 {
		t.Fatalf("watchdog trips = %d", h.sw.WatchdogTrips())
	}
}

func TestPauseWatchdogNotTrippedByNormalRelease(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.PauseWatchdog = 100 * sim.Microsecond
	h := newHarness(2, cfg)
	h.eng.At(0, "setup", func() {
		h.sw.SetOutputPaused(1, true)
		h.sw.Inject(0, frame(1, 1))
	})
	h.eng.At(sim.Time(10*sim.Microsecond), "release", func() {
		h.sw.SetOutputPaused(1, false)
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if h.sw.WatchdogTrips() != 0 {
		t.Fatal("watchdog tripped despite normal release")
	}
	if len(h.sent) != 1 || h.sent[0].at != sim.Time(10*sim.Microsecond) {
		t.Fatalf("sent = %v", h.sent)
	}
	// A later re-pause gets a fresh watchdog generation.
	h.eng.At(h.eng.Now(), "repause", func() { h.sw.SetOutputPaused(1, true) })
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if CutThrough.String() != "cut-through" || StoreAndForward.String() != "store-and-forward" {
		t.Fatal("mode names broken")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, sim.New(), Config{Ports: 0}, Callbacks{
		Forward:  func(f *Frame) (int, bool) { return 0, true },
		TxTime:   func(int, *Frame) sim.Duration { return 1 },
		Transmit: func(int, *Frame) {},
	})
}
