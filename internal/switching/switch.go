// Package switching models the layer-2 cut-through switches whose per-hop
// traversal cost is, per the paper's Figure 1, the latency bottleneck of
// rack-scale fabrics ("in the scale of a rack, it is packet switching that
// prevents distributed rack-scale applications from scaling").
//
// The model is an input-queued switch with virtual output queues and
// iSLIP-style desynchronized round-robin grants, at frame granularity:
// a frame becomes grant-eligible one pipeline latency after it reaches the
// ingress, waits in its VOQ for the output to be free, then occupies the
// output for its serialization time. Store-and-forward is the same pipeline
// with the fabric delaying ingress eligibility until the frame tail has
// arrived. Hop-by-hop pause (PFC-like) makes the fabric lossless: a filling
// input asks the fabric to pause the upstream transmitter.
package switching

import (
	"fmt"

	"rackfab/internal/sim"
	"rackfab/internal/telemetry"
)

// Frame is the unit of switched traffic: simulation metadata for one
// Ethernet frame in flight. The wire encoding lives in netstack; the
// switch only needs sizes and identity.
type Frame struct {
	// ID is unique per frame within a run.
	ID uint64
	// SrcNode and DstNode are fabric node IDs.
	SrcNode, DstNode int
	// DataBits is the frame's wire size before FEC expansion, including
	// Ethernet overheads.
	DataBits int64
	// FlowID groups frames into flows for ECMP hashing and accounting.
	FlowID uint64
	// Injected is when the frame first entered the fabric.
	Injected sim.Time
	// Hops counts switch traversals so far (the fabric increments it; the
	// reconfiguration experiments report its distribution).
	Hops int
	// VLBPhase2 is Valiant load balancing's per-frame phase bit: false
	// while the frame heads for its pivot node, true once past it.
	VLBPhase2 bool
	// Frames is the member count when this Frame is a train of coalesced
	// consecutive same-flow frames sharing one scheduling event (0 or 1
	// means a single frame). DataBits already sums the members' wire
	// bits; the switch treats a train as one VOQ entry and the endpoints
	// expand per-member accounting on delivery.
	Frames int
	// Deadline, retry counts etc. travel in Meta, opaque to the switch.
	Meta interface{}
}

// Mode selects the forwarding discipline.
type Mode int

// Forwarding modes.
const (
	// CutThrough starts forwarding as soon as the header has arrived.
	CutThrough Mode = iota
	// StoreAndForward waits for the full frame (and FCS check).
	StoreAndForward
)

// String names the mode.
func (m Mode) String() string {
	if m == CutThrough {
		return "cut-through"
	}
	return "store-and-forward"
}

// Config sizes a switch.
type Config struct {
	// Ports is the port count.
	Ports int
	// Mode is the forwarding discipline (used by the fabric to compute
	// ingress eligibility; recorded here for reports).
	Mode Mode
	// PipelineLatency is the fixed traversal latency of the switching
	// logic — lookup, crossbar setup, MAC pipelines. Figure 1's
	// "state-of-the-art cut through switch" per-hop cost.
	PipelineLatency sim.Duration
	// VOQCapacity is the per-VOQ buffer capacity in frames.
	VOQCapacity int
	// PauseHighWatermark pauses the upstream when an input's total
	// buffered frames reach it; PauseLowWatermark resumes below it.
	PauseHighWatermark, PauseLowWatermark int
	// PauseWatchdog force-releases an output held paused for this long.
	// Hop-by-hop pause deadlocks in cyclic topologies (the classic PFC
	// circular wait — a torus is exactly such a cycle); the watchdog
	// breaks the cycle and lets the overflow/retransmit path recover,
	// mirroring the PFC watchdogs production switches ship.
	PauseWatchdog sim.Duration
}

// DefaultConfig returns the DESIGN.md §5 calibration for a port count.
func DefaultConfig(ports int) Config {
	return Config{
		Ports:              ports,
		Mode:               CutThrough,
		PipelineLatency:    450 * sim.Nanosecond,
		VOQCapacity:        64,
		PauseHighWatermark: 48,
		PauseLowWatermark:  16,
		PauseWatchdog:      100 * sim.Microsecond,
	}
}

// Callbacks connect a switch to its fabric.
type Callbacks struct {
	// Forward maps a frame to its output port; ok=false drops the frame
	// (no route).
	Forward func(f *Frame) (port int, ok bool)
	// TxTime returns the serialization time of f on output port's link.
	TxTime func(port int, f *Frame) sim.Duration
	// Transmit puts f on the wire of output port. Called exactly when
	// serialization starts; the output stays busy for TxTime.
	Transmit func(port int, f *Frame)
	// Drop reports a discarded frame and the reason.
	Drop func(f *Frame, reason string)
	// Pause asks the fabric to pause/resume the upstream transmitter
	// feeding input port (hop-by-hop flow control).
	Pause func(port int, paused bool)
	// Trace, when non-nil, observes VOQ occupancy changes for the flight
	// recorder: enq reports push (true) vs grant (false) of frame f
	// destined for output out; depth is the affected VOQ's length after
	// the operation. Left nil when tracing is off, so the datapath pays
	// one nil check.
	Trace func(enq bool, out int, f *Frame, depth int)
}

// Stats exposes the switch's instruments.
type Stats struct {
	// Forwarded counts frames granted to an output.
	Forwarded telemetry.Counter
	// Dropped counts discarded frames.
	Dropped telemetry.Counter
	// QueueDelay is the VOQ residency distribution in picoseconds.
	QueueDelay *telemetry.Histogram
	// Occupancy tracks instantaneous buffered frames.
	Occupancy telemetry.Gauge
}

// queued is one VOQ entry.
type queued struct {
	frame      *Frame
	eligibleAt sim.Time
	enqueued   sim.Time
}

// Switch is one node's packet switch.
type Switch struct {
	node int
	eng  *sim.Engine
	cfg  Config
	cb   Callbacks

	voq        [][][]queued // [input][output]fifo
	inputCount []int        // frames buffered per input
	outBusy    []bool
	outPaused  []bool
	pauseGen   []uint64 // per output: generation counter for the watchdog
	rrPointer  []int    // per output, next input to consider
	stats      Stats
	buffered   int
	watchdogs  int
}

// New builds a switch for the given node.
func New(node int, eng *sim.Engine, cfg Config, cb Callbacks) *Switch {
	if cfg.Ports <= 0 {
		panic("switching: switch needs ports")
	}
	if cb.Forward == nil || cb.TxTime == nil || cb.Transmit == nil {
		panic("switching: Forward, TxTime and Transmit callbacks are required")
	}
	if cfg.VOQCapacity <= 0 {
		cfg.VOQCapacity = 64
	}
	if cfg.PauseHighWatermark <= 0 || cfg.PauseHighWatermark > cfg.VOQCapacity*cfg.Ports {
		cfg.PauseHighWatermark = cfg.VOQCapacity * 3 / 4
	}
	if cfg.PauseLowWatermark <= 0 || cfg.PauseLowWatermark >= cfg.PauseHighWatermark {
		cfg.PauseLowWatermark = cfg.PauseHighWatermark / 3
	}
	s := &Switch{
		node:       node,
		eng:        eng,
		cfg:        cfg,
		cb:         cb,
		voq:        make([][][]queued, cfg.Ports),
		inputCount: make([]int, cfg.Ports),
		outBusy:    make([]bool, cfg.Ports),
		outPaused:  make([]bool, cfg.Ports),
		pauseGen:   make([]uint64, cfg.Ports),
		rrPointer:  make([]int, cfg.Ports),
	}
	for i := range s.voq {
		s.voq[i] = make([][]queued, cfg.Ports)
	}
	s.stats.QueueDelay = telemetry.NewHistogram()
	return s
}

// Node returns the owning node's ID.
func (s *Switch) Node() int { return s.node }

// Config returns the switch configuration.
func (s *Switch) Config() Config { return s.cfg }

// Stats returns the instrument block.
func (s *Switch) Stats() *Stats { return &s.stats }

// Buffered returns the total frames currently queued.
func (s *Switch) Buffered() int { return s.buffered }

// Inject delivers a frame to input port at the moment it becomes available
// to the switching logic (the fabric schedules this per the forwarding
// mode: header arrival for cut-through, tail arrival for store-and-
// forward). The frame becomes grant-eligible one PipelineLatency later.
func (s *Switch) Inject(port int, f *Frame) {
	if port < 0 || port >= s.cfg.Ports {
		panic(fmt.Sprintf("switching: inject on port %d of %d-port switch", port, s.cfg.Ports))
	}
	out, ok := s.cb.Forward(f)
	if !ok {
		s.drop(f, "no-route")
		return
	}
	if out < 0 || out >= s.cfg.Ports {
		s.drop(f, "bad-output")
		return
	}
	if len(s.voq[port][out]) >= s.cfg.VOQCapacity {
		// Pause should prevent this; overflow means the upstream had
		// frames in flight past the watermark. Tail-drop.
		s.drop(f, "voq-overflow")
		return
	}
	now := s.eng.Now()
	entry := queued{frame: f, eligibleAt: now.Add(s.cfg.PipelineLatency), enqueued: now}
	s.voq[port][out] = append(s.voq[port][out], entry)
	s.inputCount[port]++
	s.buffered++
	s.stats.Occupancy.Set(float64(s.buffered))
	if s.inputCount[port] == s.cfg.PauseHighWatermark && s.cb.Pause != nil {
		s.cb.Pause(port, true)
	}
	if s.cb.Trace != nil {
		s.cb.Trace(true, out, f, len(s.voq[port][out]))
	}
	s.eng.At(entry.eligibleAt, "sw-eligible", func() { s.tryGrant(out) })
}

// SetOutputPaused pauses or resumes an output (the downstream ingress asked
// for it via its own Pause callback, relayed by the fabric). A pause is
// released by the watchdog if it outlives PauseWatchdog.
func (s *Switch) SetOutputPaused(port int, paused bool) {
	if s.outPaused[port] == paused {
		return
	}
	s.outPaused[port] = paused
	s.pauseGen[port]++
	if !paused {
		s.tryGrant(port)
		return
	}
	if s.cfg.PauseWatchdog > 0 {
		gen := s.pauseGen[port]
		s.eng.After(s.cfg.PauseWatchdog, "pause-watchdog", func() {
			if s.outPaused[port] && s.pauseGen[port] == gen {
				s.watchdogs++
				s.outPaused[port] = false
				s.pauseGen[port]++
				s.tryGrant(port)
			}
		})
	}
}

// WatchdogTrips counts forced pause releases (deadlock-breaker activity).
func (s *Switch) WatchdogTrips() int { return s.watchdogs }

// OutputBusy reports whether port is currently serializing a frame.
func (s *Switch) OutputBusy(port int) bool { return s.outBusy[port] }

// tryGrant runs the arbiter for one output: find the next input (round
// robin from the output's pointer) whose head-of-line frame for this output
// is eligible, and start transmitting it.
func (s *Switch) tryGrant(out int) {
	if s.outBusy[out] || s.outPaused[out] {
		return
	}
	now := s.eng.Now()
	n := s.cfg.Ports
	for i := 0; i < n; i++ {
		in := (s.rrPointer[out] + i) % n
		q := s.voq[in][out]
		if len(q) == 0 {
			continue
		}
		head := q[0]
		if head.eligibleAt.After(now) {
			continue // its own eligibility event will re-arbitrate
		}
		// Grant.
		s.voq[in][out] = q[1:]
		s.inputCount[in]--
		s.buffered--
		s.stats.Occupancy.Set(float64(s.buffered))
		if s.inputCount[in] == s.cfg.PauseLowWatermark && s.cb.Pause != nil {
			s.cb.Pause(in, false)
		}
		// iSLIP pointer update: advance past the granted input.
		s.rrPointer[out] = (in + 1) % n
		s.stats.Forwarded.Inc()
		s.stats.QueueDelay.Record(int64(now.Sub(head.enqueued)))
		if s.cb.Trace != nil {
			s.cb.Trace(false, out, head.frame, len(s.voq[in][out]))
		}

		tx := s.cb.TxTime(out, head.frame)
		s.outBusy[out] = true
		s.cb.Transmit(out, head.frame)
		s.eng.After(tx, "sw-out-free", func() {
			s.outBusy[out] = false
			s.tryGrant(out)
		})
		return
	}
}

func (s *Switch) drop(f *Frame, reason string) {
	s.stats.Dropped.Inc()
	if s.cb.Drop != nil {
		s.cb.Drop(f, reason)
	}
}
