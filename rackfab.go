// Package rackfab is the public API of the adaptive rack-scale fabric
// library: a from-scratch reproduction of "High speed adaptive rack-scale
// fabrics" (Sella, Moore, Zilberman — SIGCOMM 2018).
//
// A Cluster is a simulated rack: a topology of stripped-down nodes joined
// by multi-lane physical links. Config.Engine selects the simulation
// backend behind the one API:
//
//   - EnginePacket (default) simulates every frame through a cut-through
//     switch and host NIC per node, optionally under the paper's Closed
//     Ring Control (CRC) driving the Physical Layer Primitives (PLP) —
//     link breaking/bundling, high-speed bypass, lane power, adaptive FEC,
//     per-lane statistics.
//   - EngineFluid models flows as fluid streams sharing link capacity
//     max-min fairly — the engine the large-scale sweeps run on, thousands
//     of nodes in seconds.
//
// Quickstart:
//
//	cluster, err := rackfab.New(rackfab.Config{
//		Topology: rackfab.Grid, Width: 4, Height: 4,
//		Control:  rackfab.ControlOn(),
//	})
//	...
//	flows, _ := cluster.Inject(rackfab.UniformTraffic(cluster, 200, 64<<10))
//	_ = cluster.RunUntilDone(time.Second)
//	report := cluster.Report()
//
// Both engines consume replayable fault schedules (Config.Faults,
// Cluster.ApplyFaults, PoissonFlaps): link flaps, degradations, and node
// loss interleave with traffic, and Report's fault/solver sections say what
// the churn cost. A large faulted study is a few lines:
//
//	cluster, _ := rackfab.New(rackfab.Config{
//		Topology: rackfab.Grid, Width: 64, Height: 64,
//		Engine:   rackfab.EngineFluid, Seed: 1,
//	})
//	_ = cluster.ApplyFaults(rackfab.PoissonFlaps(cluster, rackfab.FlapConfig{
//		Flaps: 8, MeanGap: time.Millisecond, MeanOutage: time.Millisecond,
//	}))
//	flows, _ := cluster.Inject(rackfab.PermutationTraffic(cluster, 1e6))
//	_ = cluster.RunUntilDone(time.Minute)
//
// All time inputs are wall-clock time.Durations of *simulated* time; the
// engines run at picosecond resolution internally.
package rackfab

import (
	"fmt"
	"time"

	"rackfab/internal/fabric"
	"rackfab/internal/phy"
	"rackfab/internal/ringctl"
	"rackfab/internal/sim"
	"rackfab/internal/switching"
	"rackfab/internal/topo"
	"rackfab/internal/trace"
)

// Topology selects the constructed fabric shape.
type Topology string

// Supported topologies.
const (
	// Grid is a 2-D mesh — the paper's Figure 2 starting point.
	Grid Topology = "grid"
	// Torus is a 2-D torus built natively (wrap cables at build time).
	Torus Topology = "torus"
	// Line is a 1-D chain (validation and microbenchmark fabrics).
	Line Topology = "line"
	// Ring is a 1-D cycle.
	Ring Topology = "ring"
)

// Media selects the physical medium of all fabric links.
type Media string

// Supported media.
const (
	Backplane    Media = "backplane"
	CopperDAC    Media = "copper-dac"
	OpticalFiber Media = "optical-fiber"
)

// SwitchMode selects the forwarding discipline.
type SwitchMode string

// Supported switch modes.
const (
	CutThrough      SwitchMode = "cut-through"
	StoreAndForward SwitchMode = "store-and-forward"
)

// ControlConfig configures the Closed Ring Control.
type ControlConfig struct {
	// Enabled turns the CRC on.
	Enabled bool
	// Epoch overrides the collection period (0 = derived from ring RTT).
	Epoch time.Duration
	// DisableFEC, DisableRouting, DisablePower, DisableBypass,
	// DisableReconfig switch individual policies off (ablations).
	DisableFEC, DisableRouting, DisablePower, DisableBypass, DisableReconfig bool
	// ReconfigUtilization sets the grid→torus trigger threshold
	// (0 = default).
	ReconfigUtilization float64
}

// ControlOn returns a ControlConfig with every policy enabled.
func ControlOn() ControlConfig { return ControlConfig{Enabled: true} }

// Config assembles a cluster.
type Config struct {
	// Topology, Width, Height shape the fabric. Line/Ring use Width only.
	Topology Topology
	Width    int
	Height   int
	// LanesPerLink is the physical bundle width (default 2, per Figure 2).
	LanesPerLink int
	// Media is the link medium (default Backplane). Link capacities derive
	// from it on both engines.
	Media Media
	// NodeSpacingM is the inter-node distance (default 2 m, per Figure 1).
	NodeSpacingM float64
	// SwitchMode is the forwarding discipline (default CutThrough).
	// Packet engine only; the fluid engine has no switches.
	SwitchMode SwitchMode
	// PowerCapW caps rack power (0 = uncapped). Packet engine only.
	PowerCapW float64
	// Seed drives every stochastic element; equal seeds reproduce runs
	// exactly.
	Seed int64
	// Control configures the CRC. Packet engine only: enabling it under
	// EngineFluid is a construction error.
	Control ControlConfig
	// Engine selects the simulation backend (default EnginePacket).
	Engine Engine
	// Faults optionally installs a replayable fault timeline at
	// construction; Cluster.ApplyFaults adds more later. Both engines
	// consume the same schedule type.
	Faults *FaultSchedule
	// SLOTargetX sets the completion-time SLO multiplier k for Report's SLO
	// section: a flow attains the SLO when its FCT is within k× its ideal
	// (uncontended) FCT. 0 means the default of 4.
	SLOTargetX float64
	// Trace, when non-nil, turns on the flight recorder on either engine:
	// bounded, deterministic event and time-series capture exported via
	// Cluster.Trace. Nil (the default) compiles the recording hooks out of
	// the hot paths entirely.
	Trace *TraceConfig
}

// Cluster is a running simulated rack. All traffic, run, fault, and report
// calls route through the engine selected at construction; the handful of
// packet-hardware surfaces (lane control, BER injection, the CRC) return
// ErrPacketOnly on the fluid engine.
type Cluster struct {
	cfg   Config
	graph *topo.Graph
	be    backend
	pk    *packetBackend  // non-nil iff Engine == EnginePacket
	fl    *fluidBackend   // non-nil iff Engine == EngineFluid
	trace *trace.Recorder // non-nil iff Config.Trace was set
}

// New builds a cluster. The simulation clock starts at zero; nothing runs
// until one of the Run methods is called.
func New(cfg Config) (*Cluster, error) {
	if cfg.Width <= 0 {
		return nil, fmt.Errorf("rackfab: width must be positive")
	}
	media, err := mediaOf(cfg.Media)
	if err != nil {
		return nil, err
	}
	// Validate engine-independent knobs up front so a Config is accepted or
	// rejected identically under either engine (the fluid engine ignores
	// the switch mode but still refuses a nonsense one).
	switch cfg.SwitchMode {
	case CutThrough, StoreAndForward, "":
	default:
		return nil, fmt.Errorf("rackfab: unknown switch mode %q", cfg.SwitchMode)
	}
	opts := topo.Options{
		LanesPerLink: cfg.LanesPerLink,
		Media:        media,
		NodeSpacingM: cfg.NodeSpacingM,
	}
	var g *topo.Graph
	switch cfg.Topology {
	case Grid, "":
		if cfg.Height <= 0 {
			return nil, fmt.Errorf("rackfab: grid needs a positive height")
		}
		g = topo.NewGrid(cfg.Width, cfg.Height, opts)
	case Torus:
		if cfg.Height <= 0 {
			return nil, fmt.Errorf("rackfab: torus needs a positive height")
		}
		g = topo.NewTorus(cfg.Width, cfg.Height, opts)
	case Line:
		g = topo.NewLine(cfg.Width, opts)
	case Ring:
		g = topo.NewRing(cfg.Width, opts)
	default:
		return nil, fmt.Errorf("rackfab: unknown topology %q", cfg.Topology)
	}

	c := &Cluster{cfg: cfg, graph: g}
	if cfg.Trace != nil {
		c.trace = trace.NewRecorder(cfg.Trace.lower())
		// The utilization-sample convention differs per engine: the packet
		// datapath folds per-transmission busy fractions (window = Sum), the
		// fluid solver instantaneous allocated shares (window = Last).
		c.trace.InitLinks(trace.LinkNames(g), cfg.Engine == EnginePacket || cfg.Engine == "")
	}
	switch cfg.Engine {
	case EnginePacket, "":
		if err := c.buildPacket(g); err != nil {
			return nil, err
		}
	case EngineFluid:
		if cfg.Control.Enabled {
			return nil, fmt.Errorf("rackfab: the Closed Ring Control %w", ErrPacketOnly)
		}
		c.fl = &fluidBackend{graph: g, trace: c.trace}
		c.be = c.fl
	default:
		return nil, fmt.Errorf("rackfab: unknown engine %q", cfg.Engine)
	}
	if cfg.Faults != nil {
		if err := c.be.applyFaults(cfg.Faults); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// buildPacket assembles the packet datapath and, when configured, the CRC.
func (c *Cluster) buildPacket(g *topo.Graph) error {
	cfg := c.cfg
	eng := sim.NewSized(4 * g.NumNodes())
	fcfg := fabric.DefaultConfig(g)
	fcfg.Seed = cfg.Seed
	fcfg.PowerCapW = cfg.PowerCapW
	if !cfg.Control.Enabled {
		// Without the CRC observing per-frame telemetry, the NICs coalesce
		// consecutive same-flow frames into trains: identical wire bits and
		// fair sharing, an order of magnitude fewer datapath events.
		// SetLinkBER drops the fabric back to per-frame granularity.
		fcfg.Host.TrainLength = 16
	}
	switch cfg.SwitchMode {
	case CutThrough, "":
		fcfg.Switch.Mode = switching.CutThrough
	case StoreAndForward:
		fcfg.Switch.Mode = switching.StoreAndForward
	default:
		return fmt.Errorf("rackfab: unknown switch mode %q", cfg.SwitchMode)
	}
	fcfg.Trace = c.trace
	fab, err := fabric.New(eng, fcfg)
	if err != nil {
		return err
	}
	pk := &packetBackend{eng: eng, fab: fab}
	if cfg.Control.Enabled {
		ccfg := ringctl.DefaultConfig()
		if cfg.Control.Epoch > 0 {
			ccfg.Epoch = sim.Duration(cfg.Control.Epoch.Nanoseconds()) * sim.Nanosecond
		}
		ccfg.EnableFEC = !cfg.Control.DisableFEC
		ccfg.EnableRouting = !cfg.Control.DisableRouting
		ccfg.EnablePower = !cfg.Control.DisablePower
		ccfg.EnableBypass = !cfg.Control.DisableBypass
		ccfg.EnableReconfig = !cfg.Control.DisableReconfig
		if cfg.Control.ReconfigUtilization > 0 {
			ccfg.ReconfigUtilization = cfg.Control.ReconfigUtilization
		}
		pk.ctl = ringctl.New(eng, fab, ccfg)
		pk.ctl.Start()
	}
	c.pk = pk
	c.be = pk
	return nil
}

func mediaOf(m Media) (phy.Media, error) {
	switch m {
	case Backplane, "":
		return phy.Backplane, nil
	case CopperDAC:
		return phy.CopperDAC, nil
	case OpticalFiber:
		return phy.OpticalFiber, nil
	default:
		return 0, fmt.Errorf("rackfab: unknown media %q", m)
	}
}

// Engine returns the backend the cluster runs on.
func (c *Cluster) Engine() Engine {
	if c.pk != nil {
		return EnginePacket
	}
	return EngineFluid
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return c.graph.NumNodes() }

// MeanHops returns the current mean shortest-path hop count — the metric
// Figure 2's reconfiguration improves.
func (c *Cluster) MeanHops() (float64, error) { return c.graph.MeanHops() }

// PowerW returns the fabric's current draw in watts (zero on the fluid
// engine, which carries no power model).
func (c *Cluster) PowerW() float64 {
	if c.pk == nil {
		return 0
	}
	return c.pk.fab.TotalPowerW()
}

// RunFor advances simulated time by d.
func (c *Cluster) RunFor(d time.Duration) error { return c.be.runFor(d) }

// RunUntilDone runs until every injected flow completes, or errors at the
// simulated-time limit.
func (c *Cluster) RunUntilDone(limit time.Duration) error {
	return c.be.runUntilDone(limit)
}

// RunPhases executes barrier-synchronized phases to completion: each
// phase's flows release only once every flow of the prior phase has
// completed, with phase-relative At values anchored at the drain instant —
// the bulk-synchronous shape collective workloads (RingAllReduceTraffic and
// friends) emit. It returns per-phase flow handles. On the fluid engine the
// phase set must be the whole workload (no prior Inject or Run calls);
// limit caps total simulated time, as in RunUntilDone.
func (c *Cluster) RunPhases(phases [][]FlowSpec, limit time.Duration) ([][]*Flow, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("rackfab: RunPhases needs at least one phase")
	}
	return c.be.runPhases(phases, limit)
}

// PeakQueueDelay reports the worst per-hop frame queueing delay any link
// observed — the receiver-pressure bound incast studies compare across
// admission schemes (token pacing vs open-loop VLB). Packet engine only:
// the fluid engine has no queues.
func (c *Cluster) PeakQueueDelay() (time.Duration, error) {
	if c.pk == nil {
		return 0, errPacketOnly("queue-delay telemetry")
	}
	return fromSim(c.pk.fab.PeakQueueDelay()), nil
}

// ApplyGridToTorus executes Figure 2's reconfiguration immediately (the
// CRC does this on its own when enabled and the fabric runs hot; this
// entry point is for deterministic experiments). keepLanes is the switched
// lane count left on every link (typically 1).
func (c *Cluster) ApplyGridToTorus(keepLanes int) error {
	if c.pk == nil {
		return errPacketOnly("grid→torus reconfiguration")
	}
	ctl := c.pk.ctl
	if ctl == nil {
		ctl = ringctl.New(c.pk.eng, c.pk.fab, ringctl.DefaultConfig())
	}
	return ctl.ApplyGridToTorus(keepLanes)
}

// SetLinkBER sets the true channel bit error rate on the link joining
// nodes a and b (fault injection for the adaptive-FEC path).
func (c *Cluster) SetLinkBER(a, b int, ber float64) error {
	if c.pk == nil {
		return errPacketOnly("BER injection")
	}
	e, ok := c.graph.EdgeBetween(topo.NodeID(a), topo.NodeID(b))
	if !ok {
		return fmt.Errorf("rackfab: no link between %d and %d", a, b)
	}
	for _, lane := range e.Link.Lanes {
		lane.SetBER(ber)
	}
	// BER corrupts individual frames; frames queued from here on must be
	// per-frame events so the error model observes each one.
	c.pk.fab.SetFrameTrains(1)
	return nil
}

// DisableLanes powers down n lanes on the link joining a and b (fault
// injection / degradation for the adaptive-routing path). For
// engine-agnostic capacity faults use a FaultSchedule instead.
func (c *Cluster) DisableLanes(a, b, n int) error {
	if c.pk == nil {
		return errPacketOnly("lane control")
	}
	e, ok := c.graph.EdgeBetween(topo.NodeID(a), topo.NodeID(b))
	if !ok {
		return fmt.Errorf("rackfab: no link between %d and %d", a, b)
	}
	if n >= e.Link.ActiveLanes() {
		return fmt.Errorf("rackfab: refusing to darken the whole link (%d of %d lanes)", n, e.Link.ActiveLanes())
	}
	for i := 0; i < n; i++ {
		lane := e.Link.Lanes[len(e.Link.Lanes)-1-i]
		if err := lane.SetState(phy.LaneOff); err != nil {
			return err
		}
	}
	c.pk.fab.RebuildRoutes(nil)
	return nil
}

// LinkFECName reports the FEC profile currently installed on the link
// joining a and b.
func (c *Cluster) LinkFECName(a, b int) (string, error) {
	if c.pk == nil {
		return "", errPacketOnly("FEC introspection")
	}
	e, ok := c.graph.EdgeBetween(topo.NodeID(a), topo.NodeID(b))
	if !ok {
		return "", fmt.Errorf("rackfab: no link between %d and %d", a, b)
	}
	return e.Link.FEC().Name(), nil
}

// Decisions returns the CRC's decision log as printable lines (empty
// without control enabled; replayed fault events appear here too).
func (c *Cluster) Decisions() []string {
	if c.pk == nil || c.pk.ctl == nil {
		return nil
	}
	ds := c.pk.ctl.Decisions()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.String()
	}
	return out
}

// Now returns the current simulated time.
func (c *Cluster) Now() time.Duration { return c.be.now() }

// simDur converts an API duration (ns resolution) to simulator picoseconds.
func simDur(d time.Duration) sim.Duration {
	return sim.Duration(d.Nanoseconds()) * sim.Nanosecond
}

// fromSim converts simulator picoseconds to an API duration (truncating
// below a nanosecond).
func fromSim(d sim.Duration) time.Duration {
	return time.Duration(int64(d) / int64(sim.Nanosecond))
}
