// Package rackfab is the public API of the adaptive rack-scale fabric
// library: a from-scratch reproduction of "High speed adaptive rack-scale
// fabrics" (Sella, Moore, Zilberman — SIGCOMM 2018).
//
// A Cluster is a simulated rack: a topology of stripped-down nodes joined
// by multi-lane physical links, a cut-through switch and a host NIC per
// node, and optionally the paper's Closed Ring Control (CRC) driving the
// Physical Layer Primitives (PLP) — link breaking/bundling, high-speed
// bypass, lane power, adaptive FEC, per-lane statistics.
//
// Quickstart:
//
//	cluster, err := rackfab.New(rackfab.Config{
//		Topology: rackfab.Grid, Width: 4, Height: 4,
//		Control:  rackfab.ControlOn(),
//	})
//	...
//	flows, _ := cluster.Inject(rackfab.UniformTraffic(cluster, 200, 64<<10))
//	_ = cluster.RunUntilDone(time.Second)
//	report := cluster.Report()
//
// All time inputs are wall-clock time.Durations of *simulated* time; the
// engine itself runs at picosecond resolution internally.
package rackfab

import (
	"fmt"
	"time"

	"rackfab/internal/fabric"
	"rackfab/internal/host"
	"rackfab/internal/phy"
	"rackfab/internal/ringctl"
	"rackfab/internal/sim"
	"rackfab/internal/switching"
	"rackfab/internal/topo"
)

// Topology selects the constructed fabric shape.
type Topology string

// Supported topologies.
const (
	// Grid is a 2-D mesh — the paper's Figure 2 starting point.
	Grid Topology = "grid"
	// Torus is a 2-D torus built natively (wrap cables at build time).
	Torus Topology = "torus"
	// Line is a 1-D chain (validation and microbenchmark fabrics).
	Line Topology = "line"
	// Ring is a 1-D cycle.
	Ring Topology = "ring"
)

// Media selects the physical medium of all fabric links.
type Media string

// Supported media.
const (
	Backplane    Media = "backplane"
	CopperDAC    Media = "copper-dac"
	OpticalFiber Media = "optical-fiber"
)

// SwitchMode selects the forwarding discipline.
type SwitchMode string

// Supported switch modes.
const (
	CutThrough      SwitchMode = "cut-through"
	StoreAndForward SwitchMode = "store-and-forward"
)

// ControlConfig configures the Closed Ring Control.
type ControlConfig struct {
	// Enabled turns the CRC on.
	Enabled bool
	// Epoch overrides the collection period (0 = derived from ring RTT).
	Epoch time.Duration
	// DisableFEC, DisableRouting, DisablePower, DisableBypass,
	// DisableReconfig switch individual policies off (ablations).
	DisableFEC, DisableRouting, DisablePower, DisableBypass, DisableReconfig bool
	// ReconfigUtilization sets the grid→torus trigger threshold
	// (0 = default).
	ReconfigUtilization float64
}

// ControlOn returns a ControlConfig with every policy enabled.
func ControlOn() ControlConfig { return ControlConfig{Enabled: true} }

// Config assembles a cluster.
type Config struct {
	// Topology, Width, Height shape the fabric. Line/Ring use Width only.
	Topology Topology
	Width    int
	Height   int
	// LanesPerLink is the physical bundle width (default 2, per Figure 2).
	LanesPerLink int
	// Media is the link medium (default Backplane).
	Media Media
	// NodeSpacingM is the inter-node distance (default 2 m, per Figure 1).
	NodeSpacingM float64
	// SwitchMode is the forwarding discipline (default CutThrough).
	SwitchMode SwitchMode
	// PowerCapW caps rack power (0 = uncapped).
	PowerCapW float64
	// Seed drives every stochastic element; equal seeds reproduce runs
	// exactly.
	Seed int64
	// Control configures the CRC.
	Control ControlConfig
}

// Cluster is a running simulated rack.
type Cluster struct {
	cfg   Config
	eng   *sim.Engine
	graph *topo.Graph
	fab   *fabric.Fabric
	ctl   *ringctl.Controller
}

// New builds a cluster. The simulation clock starts at zero; nothing runs
// until one of the Run methods is called.
func New(cfg Config) (*Cluster, error) {
	if cfg.Width <= 0 {
		return nil, fmt.Errorf("rackfab: width must be positive")
	}
	media, err := mediaOf(cfg.Media)
	if err != nil {
		return nil, err
	}
	opts := topo.Options{
		LanesPerLink: cfg.LanesPerLink,
		Media:        media,
		NodeSpacingM: cfg.NodeSpacingM,
	}
	var g *topo.Graph
	switch cfg.Topology {
	case Grid, "":
		if cfg.Height <= 0 {
			return nil, fmt.Errorf("rackfab: grid needs a positive height")
		}
		g = topo.NewGrid(cfg.Width, cfg.Height, opts)
	case Torus:
		if cfg.Height <= 0 {
			return nil, fmt.Errorf("rackfab: torus needs a positive height")
		}
		g = topo.NewTorus(cfg.Width, cfg.Height, opts)
	case Line:
		g = topo.NewLine(cfg.Width, opts)
	case Ring:
		g = topo.NewRing(cfg.Width, opts)
	default:
		return nil, fmt.Errorf("rackfab: unknown topology %q", cfg.Topology)
	}

	eng := sim.New()
	fcfg := fabric.DefaultConfig(g)
	fcfg.Seed = cfg.Seed
	fcfg.PowerCapW = cfg.PowerCapW
	switch cfg.SwitchMode {
	case CutThrough, "":
		fcfg.Switch.Mode = switching.CutThrough
	case StoreAndForward:
		fcfg.Switch.Mode = switching.StoreAndForward
	default:
		return nil, fmt.Errorf("rackfab: unknown switch mode %q", cfg.SwitchMode)
	}
	fab, err := fabric.New(eng, fcfg)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, eng: eng, graph: g, fab: fab}

	if cfg.Control.Enabled {
		ccfg := ringctl.DefaultConfig()
		if cfg.Control.Epoch > 0 {
			ccfg.Epoch = sim.Duration(cfg.Control.Epoch.Nanoseconds()) * sim.Nanosecond
		}
		ccfg.EnableFEC = !cfg.Control.DisableFEC
		ccfg.EnableRouting = !cfg.Control.DisableRouting
		ccfg.EnablePower = !cfg.Control.DisablePower
		ccfg.EnableBypass = !cfg.Control.DisableBypass
		ccfg.EnableReconfig = !cfg.Control.DisableReconfig
		if cfg.Control.ReconfigUtilization > 0 {
			ccfg.ReconfigUtilization = cfg.Control.ReconfigUtilization
		}
		c.ctl = ringctl.New(eng, fab, ccfg)
		c.ctl.Start()
	}
	return c, nil
}

func mediaOf(m Media) (phy.Media, error) {
	switch m {
	case Backplane, "":
		return phy.Backplane, nil
	case CopperDAC:
		return phy.CopperDAC, nil
	case OpticalFiber:
		return phy.OpticalFiber, nil
	default:
		return 0, fmt.Errorf("rackfab: unknown media %q", m)
	}
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return c.graph.NumNodes() }

// MeanHops returns the current mean shortest-path hop count — the metric
// Figure 2's reconfiguration improves.
func (c *Cluster) MeanHops() (float64, error) { return c.graph.MeanHops() }

// PowerW returns the fabric's current draw in watts.
func (c *Cluster) PowerW() float64 { return c.fab.TotalPowerW() }

// RunFor advances simulated time by d.
func (c *Cluster) RunFor(d time.Duration) error {
	return c.fab.RunFor(simDur(d))
}

// RunUntilDone runs until every injected flow completes, or errors at the
// simulated-time limit.
func (c *Cluster) RunUntilDone(limit time.Duration) error {
	return c.fab.RunUntilDone(sim.Time(simDur(limit)))
}

// ApplyGridToTorus executes Figure 2's reconfiguration immediately (the
// CRC does this on its own when enabled and the fabric runs hot; this
// entry point is for deterministic experiments). keepLanes is the switched
// lane count left on every link (typically 1).
func (c *Cluster) ApplyGridToTorus(keepLanes int) error {
	ctl := c.ctl
	if ctl == nil {
		ctl = ringctl.New(c.eng, c.fab, ringctl.DefaultConfig())
	}
	return ctl.ApplyGridToTorus(keepLanes)
}

// SetLinkBER sets the true channel bit error rate on the link joining
// nodes a and b (fault injection for the adaptive-FEC path).
func (c *Cluster) SetLinkBER(a, b int, ber float64) error {
	e, ok := c.graph.EdgeBetween(topo.NodeID(a), topo.NodeID(b))
	if !ok {
		return fmt.Errorf("rackfab: no link between %d and %d", a, b)
	}
	for _, lane := range e.Link.Lanes {
		lane.SetBER(ber)
	}
	return nil
}

// DisableLanes powers down n lanes on the link joining a and b (fault
// injection / degradation for the adaptive-routing path).
func (c *Cluster) DisableLanes(a, b, n int) error {
	e, ok := c.graph.EdgeBetween(topo.NodeID(a), topo.NodeID(b))
	if !ok {
		return fmt.Errorf("rackfab: no link between %d and %d", a, b)
	}
	if n >= e.Link.ActiveLanes() {
		return fmt.Errorf("rackfab: refusing to darken the whole link (%d of %d lanes)", n, e.Link.ActiveLanes())
	}
	for i := 0; i < n; i++ {
		lane := e.Link.Lanes[len(e.Link.Lanes)-1-i]
		if err := lane.SetState(phy.LaneOff); err != nil {
			return err
		}
	}
	c.fab.RebuildRoutes(nil)
	return nil
}

// LinkFECName reports the FEC profile currently installed on the link
// joining a and b.
func (c *Cluster) LinkFECName(a, b int) (string, error) {
	e, ok := c.graph.EdgeBetween(topo.NodeID(a), topo.NodeID(b))
	if !ok {
		return "", fmt.Errorf("rackfab: no link between %d and %d", a, b)
	}
	return e.Link.FEC().Name(), nil
}

// Decisions returns the CRC's decision log as printable lines (empty
// without control enabled).
func (c *Cluster) Decisions() []string {
	if c.ctl == nil {
		return nil
	}
	ds := c.ctl.Decisions()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.String()
	}
	return out
}

// Now returns the current simulated time.
func (c *Cluster) Now() time.Duration {
	return time.Duration(c.eng.Now() / sim.Time(sim.Nanosecond) * sim.Time(time.Nanosecond))
}

// simDur converts an API duration (ns resolution) to simulator picoseconds.
func simDur(d time.Duration) sim.Duration {
	return sim.Duration(d.Nanoseconds()) * sim.Nanosecond
}

// fromSim converts simulator picoseconds to an API duration (truncating
// below a nanosecond).
func fromSim(d sim.Duration) time.Duration {
	return time.Duration(int64(d) / int64(sim.Nanosecond))
}

// Flow is a handle on one injected transfer.
type Flow struct{ inner *host.Flow }

// Done reports completion.
func (f *Flow) Done() bool { return f.inner.Done() }

// Failed reports the flow was abandoned after repeated retransmissions.
func (f *Flow) Failed() bool { return f.inner.Failed() }

// CompletionTime returns the flow completion time; it errors on unfinished
// flows.
func (f *Flow) CompletionTime() (time.Duration, error) {
	if !f.inner.Done() {
		return 0, fmt.Errorf("rackfab: flow %d unfinished", f.inner.ID)
	}
	return fromSim(f.inner.FCT()), nil
}

// Retransmits returns the number of retransmitted frames.
func (f *Flow) Retransmits() int64 { return f.inner.Retransmits() }

// Label returns the workload label.
func (f *Flow) Label() string { return f.inner.Label }

// Endpoints returns (src, dst) node IDs.
func (f *Flow) Endpoints() (int, int) { return f.inner.Src, f.inner.Dst }

// Bytes returns the flow size.
func (f *Flow) Bytes() int64 { return f.inner.Bytes }
