package rackfab_test

import (
	"fmt"
	"time"

	"rackfab"
)

// Example builds a small adaptive rack fabric, runs a MapReduce-style
// shuffle with the Closed Ring Control enabled, and reports the job
// completion time deterministically.
func Example() {
	cluster, err := rackfab.New(rackfab.Config{
		Topology: rackfab.Grid,
		Width:    3, Height: 3,
		Seed:    7,
		Control: rackfab.ControlOn(),
	})
	if err != nil {
		panic(err)
	}
	flows, err := cluster.Inject(rackfab.ShuffleTraffic(cluster, 16<<10))
	if err != nil {
		panic(err)
	}
	if err := cluster.RunUntilDone(5 * time.Second); err != nil {
		panic(err)
	}
	jct, err := rackfab.JobCompletionTime(flows)
	if err != nil {
		panic(err)
	}
	fmt.Printf("flows: %d, all complete: %v, JCT under 1ms: %v\n",
		len(flows), cluster.Report().FlowsCompleted == int64(len(flows)), jct < time.Millisecond)
	// Output:
	// flows: 72, all complete: true, JCT under 1ms: true
}

// ExampleCluster_ApplyGridToTorus reconfigures a grid into a torus through
// Physical Layer Primitives and shows the hop-count gain — the paper's
// Figure 2 in four statements.
func ExampleCluster_ApplyGridToTorus() {
	cluster, err := rackfab.New(rackfab.Config{
		Topology: rackfab.Grid, Width: 4, Height: 4, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	before, _ := cluster.MeanHops()
	if err := cluster.ApplyGridToTorus(1); err != nil {
		panic(err)
	}
	if err := cluster.RunFor(50 * time.Millisecond); err != nil {
		panic(err)
	}
	after, _ := cluster.MeanHops()
	fmt.Printf("mean hops: %.2f -> %.2f\n", before, after)
	// Output:
	// mean hops: 2.67 -> 2.13
}

// Example_fluidFaults runs a faulted permutation on the fluid engine —
// the shape of the large-scale churn studies, entirely through the public
// API: no internal imports, one Engine field, one replayable schedule.
func Example_fluidFaults() {
	cluster, err := rackfab.New(rackfab.Config{
		Topology: rackfab.Grid, Width: 8, Height: 8,
		Engine: rackfab.EngineFluid, Seed: 42,
		Faults: rackfab.NewFaultSchedule(
			rackfab.FaultSpec{At: 100 * time.Microsecond, Kind: rackfab.LinkDown, A: 27, B: 28},
			rackfab.FaultSpec{At: 400 * time.Microsecond, Kind: rackfab.LinkUp, A: 27, B: 28},
		),
	})
	if err != nil {
		panic(err)
	}
	flows, err := cluster.Inject(rackfab.PermutationTraffic(cluster, 1e6))
	if err != nil {
		panic(err)
	}
	if err := cluster.RunUntilDone(time.Minute); err != nil {
		panic(err)
	}
	rep := cluster.Report()
	fmt.Printf("flows: %d/%d complete, capacity events: %d, rerouted around the flap: %v\n",
		rep.FlowsCompleted, len(flows), rep.Faults.CapacityEvents, rep.Faults.Reroutes > 0)
	// Output:
	// flows: 64/64 complete, capacity events: 2, rerouted around the flap: true
}

// ExampleMinFlowSizeForBypass evaluates the paper's central optimization:
// the smallest flow for which a reconfiguration pays for itself.
func ExampleMinFlowSizeForBypass() {
	sigma := rackfab.MinFlowSizeForBypass(time.Millisecond, 25e9, 50e9)
	fmt.Printf("reconfigure only for flows above %d MB\n", sigma/1_000_000)
	// Output:
	// reconfigure only for flows above 6 MB
}

// ExampleFECLadder lists the adaptive FEC ladder the Closed Ring Control
// walks as channel quality degrades.
func ExampleFECLadder() {
	for _, p := range rackfab.FECLadder() {
		fmt.Printf("%-14s overhead %.3f\n", p.Name, p.Overhead)
	}
	// Output:
	// none           overhead 1.000
	// secded(72,64)  overhead 1.125
	// rs(255,239)    overhead 1.067
	// rs(255,223)    overhead 1.143
}
