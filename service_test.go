package rackfab

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// svcClusterConfig is the shared world of the service-mode tests: a fluid
// 4×4 grid with the flight recorder on, so split-run equality can compare
// trace bytes as well as fingerprints.
func svcClusterConfig() Config {
	return Config{
		Topology: Grid, Width: 4, Height: 4,
		Engine: EngineFluid, Seed: 9,
		Trace: &TraceConfig{},
	}
}

// svcFlaps is the fault timeline the service soak runs under: Poisson link
// flaps that keep churning through the whole window, including across the
// checkpoint instant.
func svcFlaps(c *Cluster) *FaultSchedule {
	return PoissonFlaps(c, FlapConfig{
		Flaps:      6,
		Start:      2 * time.Millisecond,
		MeanGap:    4 * time.Millisecond,
		MeanOutage: 2 * time.Millisecond,
	})
}

// svcServeConfig returns the service load declaration per arrival process.
func svcServeConfig(process string) ServeConfig {
	return ServeConfig{
		Tick: 500 * time.Microsecond,
		Arrivals: ArrivalSpec{
			Process: process,
			Seed:    7,
			Rate:    40000, // flows/s
			Sizes:   "pareto:20000:1.4:2000000",
		},
	}
}

// serviceTraceText exports the cluster's flight-recorder trace text.
func serviceTraceText(t *testing.T, c *Cluster) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Trace().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestServiceCheckpointSplitRunBitIdentical is the tentpole acceptance
// gate: a service run split across a Checkpoint/ResumeService boundary —
// with open-loop arrivals and a PoissonFlaps schedule active — must be
// byte-identical to the unbroken run, in both the service fingerprint and
// the flight-recorder trace text.
func TestServiceCheckpointSplitRunBitIdentical(t *testing.T) {
	for _, process := range []string{"poisson", "markov"} {
		t.Run(process, func(t *testing.T) {
			mid, end := 10*time.Millisecond, 20*time.Millisecond

			// Unbroken run.
			c1, err := New(svcClusterConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := c1.ApplyFaults(svcFlaps(c1)); err != nil {
				t.Fatal(err)
			}
			s1, err := c1.Serve(svcServeConfig(process))
			if err != nil {
				t.Fatal(err)
			}
			if err := s1.RunUntil(end); err != nil {
				t.Fatal(err)
			}
			wantFP, wantTrace := s1.Fingerprint(), serviceTraceText(t, c1)
			wantCkpt, err := s1.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}

			// Split run: same world to mid, checkpoint, resume, continue.
			c2, err := New(svcClusterConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := c2.ApplyFaults(svcFlaps(c2)); err != nil {
				t.Fatal(err)
			}
			s2, err := c2.Serve(svcServeConfig(process))
			if err != nil {
				t.Fatal(err)
			}
			if err := s2.RunUntil(mid); err != nil {
				t.Fatal(err)
			}
			ckpt, err := s2.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			// Serialization must be stable: checkpointing twice is identical.
			again, err := s2.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ckpt, again) {
				t.Fatal("two checkpoints of the same state differ")
			}

			s3, err := ResumeService(svcClusterConfig(), svcServeConfig(process), ckpt)
			if err != nil {
				t.Fatal(err)
			}
			if got := s3.Fingerprint(); got != s2.Fingerprint() {
				t.Fatalf("restored fingerprint diverged at the boundary:\n--- original ---\n%s--- restored ---\n%s", s2.Fingerprint(), got)
			}
			if err := s3.RunUntil(end); err != nil {
				t.Fatal(err)
			}
			if got := s3.Fingerprint(); got != wantFP {
				t.Fatalf("split run diverged:\n--- unbroken ---\n%s--- split ---\n%s", wantFP, got)
			}
			if got := serviceTraceText(t, s3.Cluster()); got != wantTrace {
				t.Fatal("split-run trace text diverged from the unbroken run")
			}
			gotCkpt, err := s3.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotCkpt, wantCkpt) {
				t.Fatal("end-of-run checkpoint bytes diverged between unbroken and split runs")
			}
		})
	}
}

// TestServiceSoakRetainedBounded is the quick soak gate: 256 nodes, ten
// minutes of simulated open-loop load, and the engine's retained flow-state
// count must stay flat — bounded by in-flight traffic, not by soak length.
func TestServiceSoakRetainedBounded(t *testing.T) {
	c, err := New(Config{
		Topology: Grid, Width: 16, Height: 16,
		Engine: EngineFluid, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Serve(ServeConfig{
		Tick: 250 * time.Millisecond,
		Arrivals: ArrivalSpec{
			Seed:  11,
			Rate:  10, // flows/s for 10 simulated minutes ≈ 6k flows total
			Sizes: "fixed:1000000",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Injected < 5000 {
		t.Fatalf("soak injected only %d flows", st.Injected)
	}
	if st.Completed+int64(st.Retained) < st.Injected {
		t.Fatalf("flows lost: injected %d, completed %d, retained %d", st.Injected, st.Completed, st.Retained)
	}
	// The bound: per-flow engine state must track in-flight load (tens of
	// flows at this rate), not the thousands injected over the soak.
	if st.RetainedPeak > 100 {
		t.Fatalf("retained peak %d — flow state is accumulating (injected %d)", st.RetainedPeak, st.Injected)
	}
	if st.Retired < st.Injected-int64(st.RetainedPeak) {
		t.Fatalf("retired %d of %d — retirement is not keeping up", st.Retired, st.Injected)
	}
	if st.AttainPct <= 0 || st.P99FCT <= 0 {
		t.Fatalf("soak produced empty statistics: %+v", st)
	}
}

// TestServeBothEngines: the same declarative service config drives either
// engine; both complete flows and report sane streaming statistics.
func TestServeBothEngines(t *testing.T) {
	for _, engine := range []Engine{EnginePacket, EngineFluid} {
		t.Run(string(engine), func(t *testing.T) {
			c, err := New(Config{
				Topology: Grid, Width: 4, Height: 4,
				Engine: engine, Seed: 2,
				Control: ControlConfig{Enabled: false},
			})
			if err != nil {
				t.Fatal(err)
			}
			s, err := c.Serve(ServeConfig{
				Tick: time.Millisecond,
				Arrivals: ArrivalSpec{
					Seed:  5,
					Rate:  2000,
					Sizes: "fixed:20000",
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.RunUntil(10 * time.Millisecond); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Injected == 0 || st.Completed == 0 {
				t.Fatalf("service made no progress: %+v", st)
			}
			if st.Completed > 0 && st.P99FCT <= 0 {
				t.Fatalf("completed flows but empty FCT stats: %+v", st)
			}
			if st.RetainedPeak >= int(st.Injected) && st.Injected > 20 {
				t.Fatalf("no retirement happened: %+v", st)
			}
			if !strings.Contains(s.Fingerprint(), "injected=") {
				t.Fatal("fingerprint missing counters")
			}
		})
	}
}

// TestInjectMidRunHandleStability: on BOTH engines, handles returned
// before a mid-run Inject stay valid and complete after later batches
// land — on the fluid engine because batch-major IDs never renumber.
func TestInjectMidRunHandleStability(t *testing.T) {
	for _, engine := range []Engine{EnginePacket, EngineFluid} {
		t.Run(string(engine), func(t *testing.T) {
			c, err := New(Config{
				Topology: Grid, Width: 4, Height: 4,
				Engine: engine, Seed: 6,
				Control: ControlConfig{Enabled: false},
			})
			if err != nil {
				t.Fatal(err)
			}
			first, err := c.Inject(UniformTraffic(c, 20, 256<<10))
			if err != nil {
				t.Fatal(err)
			}
			if err := c.RunFor(30 * time.Microsecond); err != nil {
				t.Fatal(err)
			}
			var batches [][]*Flow
			for b := 0; b < 3; b++ {
				late, err := c.Inject(UniformTraffic(c, 10, 64<<10))
				if err != nil {
					t.Fatalf("mid-run inject %d: %v", b, err)
				}
				batches = append(batches, late)
				if err := c.RunFor(30 * time.Microsecond); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.RunUntilDone(time.Second); err != nil {
				t.Fatal(err)
			}
			check := func(name string, flows []*Flow) {
				for i, f := range flows {
					if !f.Done() || f.Failed() {
						t.Fatalf("%s flow %d not completed after mid-run injects", name, i)
					}
					if fct, err := f.CompletionTime(); err != nil || fct <= 0 {
						t.Fatalf("%s flow %d: fct %v err %v", name, i, fct, err)
					}
				}
			}
			check("first-batch", first)
			for b, late := range batches {
				check(fmt.Sprintf("late-batch-%d", b), late)
			}
			if got := c.Report().FlowsCompleted; got != 50 {
				t.Fatalf("completed %d flows, want 50", got)
			}
		})
	}
}

// TestRestoreGuards pins the checkpoint surface's error contract.
func TestRestoreGuards(t *testing.T) {
	cfg := svcClusterConfig()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Serve(svcServeConfig("poisson"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ckpt, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ResumeService(cfg, svcServeConfig("poisson"), []byte("junk")); err == nil {
		t.Fatal("resume accepted junk bytes")
	}
	bad := cfg
	bad.Seed++
	if _, err := ResumeService(bad, svcServeConfig("poisson"), ckpt); err == nil {
		t.Fatal("resume accepted a different Config")
	}
	withFaults := cfg
	withFaults.Faults = NewFaultSchedule(FaultSpec{At: time.Millisecond, Kind: LinkDown, A: 0, B: 1})
	if _, err := ResumeService(withFaults, svcServeConfig("poisson"), ckpt); err == nil {
		t.Fatal("resume accepted cfg.Faults alongside the checkpointed schedule")
	}
	pkt := cfg
	pkt.Engine = EnginePacket
	pkt.Trace = nil
	if _, err := ResumeService(pkt, svcServeConfig("poisson"), ckpt); err == nil {
		t.Fatal("resume accepted the packet engine")
	}

	// Checkpoint is fluid-only, and unavailable after RunPhases.
	cp, err := New(Config{Topology: Grid, Width: 4, Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Checkpoint(); err == nil {
		t.Fatal("packet cluster accepted Checkpoint")
	}
	cf, err := New(Config{Topology: Grid, Width: 4, Height: 4, Engine: EngineFluid})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cf.RunPhases([][]FlowSpec{{{Src: 0, Dst: 5, Bytes: 1e4}}}, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := cf.Checkpoint(); err == nil {
		t.Fatal("phased cluster accepted Checkpoint")
	}
}

// stripSLO drops the report's SLO line: SLO attainment is computed from
// flow handles, which Restore documents it does not rebuild (service mode
// accounts SLO from drained completions instead).
func stripSLO(report string) string {
	var kept []string
	for _, line := range strings.Split(report, "\n") {
		if !strings.HasPrefix(line, "slo:") {
			kept = append(kept, line)
		}
	}
	return strings.Join(kept, "\n")
}

// TestClusterCheckpointPlainRun: the checkpoint surface also works outside
// service mode — a plain Inject/RunFor sequence restores bit-identically
// at the engine level (handles, and with them the handle-derived SLO report
// section, are documented as not restored).
func TestClusterCheckpointPlainRun(t *testing.T) {
	cfg := Config{Topology: Grid, Width: 4, Height: 4, Engine: EngineFluid, Seed: 4}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Inject(UniformTraffic(c, 40, 64<<10)); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFor(50 * time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Inject(UniformTraffic(c, 10, 32<<10)); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFor(50 * time.Microsecond); err != nil {
		t.Fatal(err)
	}
	ckpt, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(cfg, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Now() != c.Now() {
		t.Fatalf("restored clock %v, want %v", r.Now(), c.Now())
	}
	if got, want := r.Report().String(), stripSLO(c.Report().String()); got != want {
		t.Fatalf("restored report diverged:\n--- original ---\n%s--- restored ---\n%s", want, got)
	}
	// Both continue identically.
	if err := c.RunUntilDone(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := r.RunUntilDone(time.Second); err != nil {
		t.Fatal(err)
	}
	if got, want := r.Report().String(), stripSLO(c.Report().String()); got != want {
		t.Fatalf("post-restore run diverged:\n--- original ---\n%s--- restored ---\n%s", want, got)
	}
}
