package rackfab

import (
	"fmt"
	"sort"

	"rackfab/internal/netstack"
	"rackfab/internal/sim"
	"rackfab/internal/telemetry"
	"rackfab/internal/topo"
	"rackfab/internal/workload"
)

// sloPerHopLatency is the per-hop traversal latency the ideal-FCT model
// charges — the same 450 ns the fluid engine defaults to, so the SLO
// denominator is identical across engines.
const sloPerHopLatency = 450 * sim.Nanosecond

// SLOReport summarizes completion-time SLO attainment: the fraction of
// completed flows whose FCT stayed within TargetX× their ideal
// (uncontended) FCT — bytes serialized at the fabric wire rate plus the
// shortest-path hop count of per-hop latency. Stretch is FCT over ideal;
// a flow that never queued and never shared a link scores 1. Zero-valued
// until at least one flow completes.
type SLOReport struct {
	// TargetX is the SLO multiplier k (Config.SLOTargetX, default 4).
	TargetX float64
	// Flows is the completed population; Attained how many met the target.
	Flows, Attained int64
	// AttainPct is Attained over Flows as a percentage.
	AttainPct float64
	// P50Stretch, P99Stretch, MaxStretch summarize the stretch distribution
	// (nearest-rank quantiles).
	P50Stretch, P99Stretch, MaxStretch float64
}

// sloTargetX resolves the configured SLO multiplier.
func (c *Cluster) sloTargetX() float64 {
	if c.cfg.SLOTargetX > 0 {
		return c.cfg.SLOTargetX
	}
	return 4
}

// fillSLO computes Report.SLO from every completed flow handle. Ideals use
// the fastest link rate in the fabric as the wire rate and shortest-path
// hop counts over currently-up links; flows that failed, never finished,
// or are unreachable at report time are excluded from the population.
func (c *Cluster) fillSLO(r *Report) {
	handles := c.be.flows()
	if len(handles) == 0 {
		return
	}
	var rate float64
	for _, e := range c.graph.Edges() {
		if rr := e.Link.EffectiveRate(); rr > rate {
			rate = rr
		}
	}
	if rate <= 0 {
		return
	}
	hops := make([][]int, c.graph.NumNodes())
	stretches := make([]float64, 0, len(handles))
	for _, f := range handles {
		if f.Failed() || !f.Done() {
			continue
		}
		src, dst := f.Endpoints()
		if hops[src] == nil {
			hops[src] = c.graph.HopsFrom(topo.NodeID(src))
		}
		h := hops[src][dst]
		if h < 0 {
			continue
		}
		fct, err := f.CompletionTime()
		if err != nil {
			continue
		}
		ideal := workload.IdealFCT(f.Bytes(), rate, h, sloPerHopLatency)
		if ideal <= 0 {
			continue
		}
		stretches = append(stretches, float64(simDur(fct))/float64(ideal))
	}
	if len(stretches) == 0 {
		return
	}
	s := telemetry.ComputeSLO(stretches, c.sloTargetX())
	r.SLO = SLOReport{
		TargetX: s.TargetX, Flows: s.Flows, Attained: s.Attained,
		AttainPct:  s.AttainPct,
		P50Stretch: s.P50Stretch, P99Stretch: s.P99Stretch, MaxStretch: s.MaxStretch,
	}
}

// TokenPaced re-times flow releases through per-receiver token pacers — the
// PL2-style receiver-driven admission path. Flows toward each destination
// are granted in deterministic arrival order (ties broken by src, bytes,
// label), paced at the receiver's best incident link rate under a credit
// window of windowBytes granted-but-undrained bytes (0 = the largest single
// flow toward that receiver, which serializes an incast). The returned
// specs are the inputs with shifted At values, in the original positions;
// hand them to either engine unchanged — the transform itself is a pure
// function of the spec multiset, so it is engine-agnostic and
// byte-deterministic by construction.
func TokenPaced(c *Cluster, specs []FlowSpec, windowBytes int64) ([]FlowSpec, error) {
	out := append([]FlowSpec(nil), specs...)
	idx := make([]int, len(specs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		x, y := specs[idx[a]], specs[idx[b]]
		if x.Dst != y.Dst {
			return x.Dst < y.Dst
		}
		if x.At != y.At {
			return x.At < y.At
		}
		if x.Src != y.Src {
			return x.Src < y.Src
		}
		if x.Bytes != y.Bytes {
			return x.Bytes < y.Bytes
		}
		return x.Label < y.Label
	})
	for g := 0; g < len(idx); {
		dst := specs[idx[g]].Dst
		end := g
		for end < len(idx) && specs[idx[end]].Dst == dst {
			end++
		}
		if dst < 0 || dst >= c.Nodes() {
			return nil, fmt.Errorf("rackfab: token pacing: destination %d out of range", dst)
		}
		var rate float64
		for _, e := range c.graph.Adjacent(topo.NodeID(dst)) {
			if r := e.Link.EffectiveRate(); r > rate {
				rate = r
			}
		}
		if rate <= 0 {
			return nil, fmt.Errorf("rackfab: token pacing: node %d has no usable link", dst)
		}
		win := windowBytes
		if win <= 0 {
			for _, i := range idx[g:end] {
				if specs[i].Bytes > win {
					win = specs[i].Bytes
				}
			}
		}
		p, err := netstack.NewTokenPacer(rate, win)
		if err != nil {
			return nil, err
		}
		for _, i := range idx[g:end] {
			rel, err := p.Grant(sim.Time(simDur(specs[i].At)), specs[i].Bytes)
			if err != nil {
				return nil, err
			}
			out[i].At = fromSim(sim.Duration(rel))
		}
		g = end
	}
	return out, nil
}
