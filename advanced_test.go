package rackfab

import (
	"testing"
	"time"
)

func TestAttachBurstChannel(t *testing.T) {
	c, err := New(Config{Topology: Line, Width: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := BurstChannelConfig{
		GoodBER: 1e-15, BadBER: 5e-5,
		MeanGoodDwell: 500 * time.Microsecond,
		MeanBadDwell:  500 * time.Microsecond,
	}
	if err := c.AttachBurstChannel(0, 1, cfg); err != nil {
		t.Fatal(err)
	}
	flows, err := c.Inject([]FlowSpec{{Src: 0, Dst: 1, Bytes: 3 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntilDone(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if flows[0].Retransmits() == 0 {
		t.Fatal("burst channel produced no retransmits")
	}
	if err := c.DetachBurstChannel(0, 1); err != nil {
		t.Fatal(err)
	}
	// Bad configs and bad links are rejected.
	if err := c.AttachBurstChannel(0, 1, BurstChannelConfig{GoodBER: 1e-3, BadBER: 1e-5, MeanGoodDwell: time.Millisecond, MeanBadDwell: time.Millisecond}); err == nil {
		t.Fatal("inverted BERs accepted")
	}
	if err := c.AttachBurstChannel(0, 5, cfg); err == nil {
		t.Fatal("missing link accepted")
	}
	if err := c.DetachBurstChannel(0, 5); err == nil {
		t.Fatal("missing link accepted for detach")
	}
}

func TestSetValiantRouting(t *testing.T) {
	c, err := New(Config{Topology: Torus, Width: 4, Height: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.SetValiantRouting(true)
	if _, err := c.Inject([]FlowSpec{{Src: 0, Dst: 15, Bytes: 15000}}); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntilDone(time.Second); err != nil {
		t.Fatal(err)
	}
	vlbHops := c.Report().MeanHops
	// VLB pivots inflate hop counts past the torus diameter-bounded
	// shortest path for this pair (≤ 2).
	if vlbHops <= 2.0 {
		t.Fatalf("VLB mean hops %v too short", vlbHops)
	}
	c.SetValiantRouting(false)
}

func TestLinkPrices(t *testing.T) {
	c, err := New(Config{
		Topology: Grid, Width: 3, Height: 3, Seed: 3,
		Control: ControlConfig{Enabled: true, Epoch: 30 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Inject(UniformTraffic(c, 60, 32<<10)); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntilDone(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	prices := c.LinkPrices()
	if len(prices) != 12 { // 3x3 grid: 12 links
		t.Fatalf("prices = %d entries", len(prices))
	}
	positive := 0
	for _, p := range prices {
		if p.Price < 0 {
			t.Fatalf("negative price: %+v", p)
		}
		if p.Price > 0 {
			positive++
		}
	}
	if positive == 0 {
		t.Fatal("no link accumulated any price under traffic")
	}
	// Without control there is no price book.
	c2, _ := New(Config{Topology: Line, Width: 2, Seed: 4})
	if c2.LinkPrices() != nil {
		t.Fatal("price book without control")
	}
}

func TestFECLadderInfo(t *testing.T) {
	ladder := FECLadder()
	if len(ladder) != 4 {
		t.Fatalf("ladder = %d rungs", len(ladder))
	}
	if ladder[0].Name != "none" || ladder[0].Overhead != 1.0 {
		t.Fatalf("rung 0 = %+v", ladder[0])
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i].Latency < ladder[i-1].Latency {
			t.Fatal("ladder latency not nondecreasing")
		}
		if ladder[i].Overhead <= 1.0 {
			t.Fatalf("rung %d has no overhead", i)
		}
	}
}

func TestMinFlowSizeForBypass(t *testing.T) {
	// Same analytic case as the internal optimizer test: 1 ms setup,
	// 25G → 50G gives σ* = 6.25 MB.
	if got := MinFlowSizeForBypass(time.Millisecond, 25e9, 50e9); got != 6_250_000 {
		t.Fatalf("σ* = %d", got)
	}
}
