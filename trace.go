package rackfab

import (
	"io"
	"time"

	"rackfab/internal/trace"
)

// TraceConfig turns on the flight recorder and sizes it. All bounds are
// hard: memory stays O(Capacity + links × SeriesWindows) however long the
// run, with the oldest events and windows scrolling off. The recorded
// bytes are deterministic — sim-time stamps, hash-based flow sampling, no
// wall clocks — so for a given Config and workload the exported trace is
// byte-identical across repeats and worker counts; experiment sweeps fold
// it into their determinism fingerprints.
type TraceConfig struct {
	// Capacity bounds the event ring (default 65536 events).
	Capacity int
	// SampleEvery keeps one in N flows' per-flow events (default 1 —
	// every flow). The kept set is a deterministic hash selection over
	// canonical flow IDs (splitmix64(id) mod N == 0), never a random
	// draw, so the sampled population is identical run to run.
	SampleEvery int
	// SeriesInterval is the window width of the per-link utilization and
	// queue-depth time series (default 1µs of simulated time).
	SeriesInterval time.Duration
	// SeriesWindows bounds the retained windows per link series
	// (default 1024).
	SeriesWindows int
}

// lower converts to the internal sizing; nil selects all defaults.
func (tc *TraceConfig) lower() trace.Config {
	if tc == nil {
		return trace.Config{}
	}
	return trace.Config{
		Capacity:       tc.Capacity,
		SampleEvery:    tc.SampleEvery,
		SeriesInterval: simDur(tc.SeriesInterval),
		SeriesWindows:  tc.SeriesWindows,
	}
}

// Trace is a cluster's recorded flight data: typed sim-time events (flow
// arrivals/completions, queue enqueue/dequeue with depth, fault apply and
// repair, fluid refill outcomes, phase gates) plus windowed per-link
// utilization and queue-depth series. Obtain one from Cluster.Trace after
// running with Config.Trace set.
type Trace struct {
	rec *trace.Recorder
}

// WriteText writes the stable text form. Its exact bytes are part of the
// run's determinism fingerprint: same Config + workload ⇒ same bytes.
func (t *Trace) WriteText(w io.Writer) error {
	if t == nil {
		return (*trace.Recorder)(nil).WriteText(w)
	}
	return t.rec.WriteText(w)
}

// WriteJSON writes Chrome trace-event JSON, loadable directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing: flows as async spans, one
// track per link carrying its instants and utilization/depth counters.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		return (*trace.Recorder)(nil).WriteJSON(w)
	}
	return t.rec.WriteJSON(w)
}

// Events returns how many events were recorded over the whole run,
// including any the bounded ring has since overwritten.
func (t *Trace) Events() int64 {
	if t == nil {
		return 0
	}
	return t.rec.Total()
}

// Overwritten returns how many recorded events scrolled off the ring.
func (t *Trace) Overwritten() int64 {
	if t == nil {
		return 0
	}
	return t.rec.Dropped()
}

// Trace returns the cluster's flight recorder, or nil when Config.Trace
// was not set. The returned handle reads live recorder state: export after
// the run (or between Run calls — the engines are quiescent then).
func (c *Cluster) Trace() *Trace {
	if c.trace == nil {
		return nil
	}
	return &Trace{rec: c.trace}
}

// TraceSet collects the traces of a multi-trial experiment under trial
// names, for one combined export. Registration is safe from parallel
// sweep workers; export always walks trials in sorted-name order, so the
// written bytes depend only on each trial's deterministic trace, never on
// worker scheduling.
type TraceSet struct {
	set *trace.Set
}

// NewTraceSet returns an empty set whose trials share cfg's sizing.
func NewTraceSet(cfg TraceConfig) *TraceSet {
	return &TraceSet{set: trace.NewSet(cfg.lower())}
}

// ClusterConfig returns the Config.Trace value a trial cluster should be
// built with so its recorder matches the set's sizing. Nil-safe: a nil set
// (tracing off) yields nil, which leaves tracing off.
func (s *TraceSet) ClusterConfig() *TraceConfig {
	if s == nil {
		return nil
	}
	c := s.set.Config()
	return &TraceConfig{
		Capacity:       c.Capacity,
		SampleEvery:    c.SampleEvery,
		SeriesInterval: fromSim(c.SeriesInterval),
		SeriesWindows:  c.SeriesWindows,
	}
}

// Add registers a finished trial's trace under name. Nil sets and nil
// traces are no-ops so call sites need no tracing-off guard; adding one
// name twice panics (a sweep wiring bug).
func (s *TraceSet) Add(name string, t *Trace) {
	if s == nil || t == nil {
		return
	}
	s.set.Add(name, t.rec)
}

// Len returns how many trials have registered traces.
func (s *TraceSet) Len() int {
	if s == nil {
		return 0
	}
	return s.set.Len()
}

// WriteText writes every trial's stable text form, sections in
// sorted-name order. Byte-deterministic like Trace.WriteText.
func (s *TraceSet) WriteText(w io.Writer) error {
	if s == nil {
		return nil
	}
	return s.set.WriteText(w)
}

// WriteJSON writes one Perfetto-loadable JSON document with each trial as
// its own process.
func (s *TraceSet) WriteJSON(w io.Writer) error {
	if s == nil {
		return nil
	}
	return s.set.WriteJSON(w)
}
