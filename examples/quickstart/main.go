// Quickstart: build a 4x4 adaptive rack fabric, run uniform traffic with
// the Closed Ring Control enabled, and print the cluster report.
package main

import (
	"fmt"
	"log"
	"time"

	"rackfab"
)

func main() {
	cluster, err := rackfab.New(rackfab.Config{
		Topology: rackfab.Grid,
		Width:    4,
		Height:   4,
		Seed:     1,
		Control:  rackfab.ControlOn(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built a %d-node grid fabric\n", cluster.Nodes())
	hops, _ := cluster.MeanHops()
	fmt.Printf("mean hops %.2f, idle power %.1f W\n\n", hops, cluster.PowerW())

	flows, err := cluster.Inject(rackfab.UniformTraffic(cluster, 200, 64<<10))
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.RunUntilDone(5 * time.Second); err != nil {
		log.Fatal(err)
	}

	var worst time.Duration
	for _, f := range flows {
		if d, err := f.CompletionTime(); err == nil && d > worst {
			worst = d
		}
	}
	fmt.Println(cluster.Report())
	fmt.Printf("\nworst flow completion: %v (simulated)\n", worst)
}
