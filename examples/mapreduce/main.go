// MapReduce: the paper's motivating example. A shuffle runs on a healthy
// fabric, then on a fabric with one degraded link under static routing
// ("the slowest link pulls down the performance of an entire system"), and
// finally with the Closed Ring Control routing around the degradation.
package main

import (
	"fmt"
	"log"
	"time"

	"rackfab"
)

const (
	side         = 4
	bytesPerPair = 64 << 10
)

func runShuffle(degrade, adaptive bool) time.Duration {
	cfg := rackfab.Config{
		Topology: rackfab.Grid, Width: side, Height: side, Seed: 11,
	}
	if adaptive {
		cfg.Control = rackfab.ControlConfig{
			Enabled:         true,
			Epoch:           30 * time.Microsecond,
			DisableReconfig: true, // isolate the routing response
			DisableBypass:   true,
		}
	}
	cluster, err := rackfab.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if degrade {
		// Halve a central link's bandwidth: lose one of its two lanes.
		center := (side/2)*side + side/2
		if err := cluster.DisableLanes(center, center+1, 1); err != nil {
			log.Fatal(err)
		}
	}
	flows, err := cluster.Inject(rackfab.ShuffleTraffic(cluster, bytesPerPair))
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.RunUntilDone(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	jct, err := rackfab.JobCompletionTime(flows)
	if err != nil {
		log.Fatal(err)
	}
	return jct
}

func main() {
	fmt.Printf("MapReduce shuffle on a %dx%d rack, %d KiB per mapper→reducer pair\n\n",
		side, side, bytesPerPair>>10)

	healthy := runShuffle(false, false)
	fmt.Printf("healthy fabric, static routes:        JCT %v\n", healthy)

	static := runShuffle(true, false)
	fmt.Printf("one slow link,  static routes:        JCT %v  (%+.1f%%)\n",
		static, pct(static, healthy))

	adaptive := runShuffle(true, true)
	fmt.Printf("one slow link,  CRC adaptive routing: JCT %v  (%+.1f%%)\n",
		adaptive, pct(adaptive, healthy))

	if static > healthy {
		rec := float64(static-adaptive) / float64(static-healthy) * 100
		fmt.Printf("\nthe CRC recovered %.0f%% of the slowdown the slow link caused\n", rec)
	}
}

func pct(v, base time.Duration) float64 {
	return (float64(v) - float64(base)) / float64(base) * 100
}
