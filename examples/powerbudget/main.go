// Powerbudget: the paper's second constraint in action. The same traffic
// runs on an uncapped rack and on one whose power budget sits below the
// fabric's natural draw; the Closed Ring Control's power policy sheds
// lanes (PLP #3) until the rack fits its envelope, and the report shows
// what that headroom costs in latency.
package main

import (
	"fmt"
	"log"
	"time"

	"rackfab"
)

func run(capW float64) (rackfab.Report, float64) {
	cluster, err := rackfab.New(rackfab.Config{
		Topology: rackfab.Grid,
		Width:    4, Height: 4,
		Seed:      21,
		PowerCapW: capW,
		Control: rackfab.ControlConfig{
			Enabled:         true,
			Epoch:           50 * time.Microsecond,
			DisableReconfig: true,
			DisableBypass:   true,
			DisableFEC:      true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.Inject(rackfab.UniformTraffic(cluster, 400, 64<<10)); err != nil {
		log.Fatal(err)
	}
	if err := cluster.RunUntilDone(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	return cluster.Report(), cluster.PowerW()
}

func main() {
	free, freeNow := run(0)
	fmt.Printf("uncapped rack:   draw %.1f W (peak %.1f W), FCT p99 %.2f µs\n",
		freeNow, free.PowerPeakW, free.FCT.P99Us)

	capW := free.PowerPeakW * 0.94
	capped, cappedNow := run(capW)
	fmt.Printf("capped at %.0f W: draw %.1f W (peak %.1f W), FCT p99 %.2f µs\n",
		capW, cappedNow, capped.PowerPeakW, capped.FCT.P99Us)

	fmt.Printf("\nthe CRC shed lanes until the rack fit its envelope (%d control decisions);\n",
		capped.CRCDecisions)
	fmt.Printf("the latency delta (%.2f → %.2f µs p99) is the price of the %.0f W budget\n",
		free.FCT.P99Us, capped.FCT.P99Us, capW)
}
