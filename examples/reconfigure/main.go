// Reconfigure: a Figure 2 walk-through. A grid fabric is heated with bulk
// traffic until the Closed Ring Control's utilization trigger fires and
// executes the grid→torus reconfiguration through Physical Layer
// Primitives, then RPC-class probes measure the torus. The example prints
// fabric metrics around the mutation and the CRC's decision log.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"rackfab"
)

func main() {
	cluster, err := rackfab.New(rackfab.Config{
		Topology: rackfab.Grid,
		Width:    4, Height: 4,
		LanesPerLink: 2,
		Seed:         42,
		Control: rackfab.ControlConfig{
			Enabled:             true,
			Epoch:               50 * time.Microsecond,
			ReconfigUtilization: 0.03, // eager trigger for the demo
			DisableBypass:       true, // keep the log focused on Figure 2
			DisableFEC:          true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	hops, _ := cluster.MeanHops()
	fmt.Printf("before: grid, 2 lanes/link — mean hops %.2f, power %.1f W\n",
		hops, cluster.PowerW())

	// Phase 1: bulk traffic heats the fabric; the CRC's utilization
	// trigger fires mid-run and executes the grid→torus plan.
	if _, err := cluster.Inject(rackfab.UniformTraffic(cluster, 800, 64<<10)); err != nil {
		log.Fatal(err)
	}
	if err := cluster.RunUntilDone(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	hops, _ = cluster.MeanHops()
	fmt.Printf("after:  torus via PLP      — mean hops %.2f, power %.1f W\n\n",
		hops, cluster.PowerW())

	fmt.Println("closed ring control decision log (reconfiguration excerpt):")
	printed := 0
	for _, line := range cluster.Decisions() {
		if !strings.Contains(line, "reconfig") {
			continue
		}
		fmt.Println("  " + line)
		printed++
		if printed == 10 {
			fmt.Println("  …")
			break
		}
	}
	if printed == 0 {
		fmt.Println("  (no reconfiguration triggered — raise the load or the trigger)")
	}

	// Phase 2: RPC-class probes measure the reconfigured fabric.
	if _, err := cluster.Inject(rackfab.UniformTraffic(cluster, 200, 512)); err != nil {
		log.Fatal(err)
	}
	if err := cluster.RunUntilDone(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	rep := cluster.Report()
	fmt.Printf("\nprobe frame latency on the torus: p50 %.2f µs, p99 %.2f µs (%d frames total)\n",
		rep.Latency.P50Us, rep.Latency.P99Us, rep.FramesDelivered)
}
