// Reconfigure: adaptive reconfiguration driven by a fault schedule,
// entirely through the public API. The paper's fabric earns the word
// "adaptive" by re-pricing, re-routing, and reconfiguring around link
// health, so this example injects link health events directly: a
// deterministic FaultSchedule — transceiver degradation, a link failure, a
// node loss, and their repairs, plus a seeded burst of Poisson flaps —
// replayed against a 256-node grid carrying a full permutation on the
// fluid engine. The run reroutes flows around each failure over the
// incrementally repaired routing table, parks the flows a partition
// strands until their repair heals it, and the report says what the churn
// cost. Everything is a pure function of the seed and the schedule —
// replay it and every byte matches. The same program at Width/Height 64
// is the paper-scale 4096-node faulted permutation.
package main

import (
	"fmt"
	"log"
	"time"

	"rackfab"
)

const side = 16 // 256 nodes; 64 here reproduces the 4096-node study

func run(sched *rackfab.FaultSchedule) (rackfab.Report, []*rackfab.Flow, *rackfab.FaultSchedule) {
	cluster, err := rackfab.New(rackfab.Config{
		Topology: rackfab.Grid, Width: side, Height: side,
		Engine: rackfab.EngineFluid, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	if sched == nil {
		// Deterministic hand-written timeline: an aging transceiver halves
		// one link, a central link fails and is repaired, a whole node
		// drops off the fabric and returns — merged with a seeded burst of
		// Poisson flaps. Times are anchored where a healthy permutation is
		// mid-flight at this scale.
		// Targets derive from side so the program scales: a horizontal
		// pair on row 2, a vertical pair between rows 5 and 6, the center
		// node (nodes number row-major).
		aging := side*2 + 2
		fail := side*5 + 1
		center := side*side/2 + side/2
		sched = rackfab.NewFaultSchedule(
			rackfab.FaultSpec{At: 100 * time.Microsecond, Kind: rackfab.LinkDegrade, A: aging, B: aging + 1, Frac: 0.5},
			rackfab.FaultSpec{At: 200 * time.Microsecond, Kind: rackfab.LinkDown, A: fail, B: fail + side},
			rackfab.FaultSpec{At: 900 * time.Microsecond, Kind: rackfab.LinkUp, A: fail, B: fail + side},
			rackfab.FaultSpec{At: 300 * time.Microsecond, Kind: rackfab.NodeDown, Node: center},
			rackfab.FaultSpec{At: 600 * time.Microsecond, Kind: rackfab.NodeUp, Node: center},
		).Merge(rackfab.PoissonFlaps(cluster, rackfab.FlapConfig{
			Flaps: 4, Start: 150 * time.Microsecond,
			MeanGap: 200 * time.Microsecond, MeanOutage: 300 * time.Microsecond,
		}))
	}
	if err := cluster.ApplyFaults(sched); err != nil {
		log.Fatal(err)
	}
	flows, err := cluster.Inject(rackfab.PermutationTraffic(cluster, 1e6))
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.RunUntilDone(time.Minute); err != nil {
		log.Fatal(err)
	}
	return cluster.Report(), flows, sched
}

func main() {
	// Healthy baseline: the same cluster, no schedule.
	baseline, baseFlows, _ := run(rackfab.NewFaultSchedule())
	baseJCT, _ := rackfab.JobCompletionTime(baseFlows)
	fmt.Printf("baseline: %d flows, FCT p99 %.2fus, JCT %v\n\n",
		baseline.FlowsCompleted, baseline.FCT.P99Us, baseJCT)

	churn, flows, sched := run(nil)
	fmt.Println("fault schedule (replayable, byte-stable):")
	fmt.Print(sched)

	jct, _ := rackfab.JobCompletionTime(flows)
	fmt.Printf("\nunder churn: JCT %v\n%s\n", jct, churn)
	fmt.Printf("\nthroughput degradation %.1f%%, p99 inflation %.1f%%\n",
		(1-float64(baseJCT)/float64(jct))*100,
		(churn.FCT.P99Us/baseline.FCT.P99Us-1)*100)
}
