// Reconfigure: adaptive reconfiguration driven by a fault schedule. The
// paper's fabric earns the word "adaptive" by re-pricing, re-routing, and
// reconfiguring around link health, so this example injects link health
// events directly: a deterministic faults.Schedule — transceiver
// degradation, a link failure, a node loss, and their repairs — replayed
// against a grid fabric carrying a full permutation. The run reroutes
// flows around each failure over the incrementally repaired routing
// table, parks the flows a partition strands until their repair heals it,
// and reports what the churn cost: throughput degradation, P99 inflation,
// and mean service-recovery time. Everything is a pure function of the
// seed and the schedule — replay it and every byte matches.
package main

import (
	"fmt"
	"log"

	"rackfab/internal/faults"
	"rackfab/internal/fluid"
	"rackfab/internal/sim"
	"rackfab/internal/telemetry"
	"rackfab/internal/topo"
	"rackfab/internal/workload"
)

func main() {
	const side = 8
	g := topo.NewGrid(side, side, topo.Options{})
	specs := workload.Permutation(sim.NewRNG(42), side*side, workload.Fixed(2e6))

	// Phase 1: healthy baseline.
	base, err := fluid.Run(fluid.Config{Graph: g}, specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d flows, mean FCT %v, p99 %v, JCT %v\n\n",
		len(base.Flows), base.MeanFCT, base.P99FCT, base.JCT)

	// Phase 2: the fault timeline, anchored to the baseline JCT so every
	// event lands mid-traffic. An aging transceiver halves one link, a
	// link on the hot center column fails outright and is repaired, and a
	// whole node drops off the fabric and returns — the schedule is the
	// reconfiguration driver, each event a plain (At, Target, Kind) record.
	// The failing link is deliberately NOT incident to the lost node:
	// NodeUp restores every edge at its node, which would end an
	// overlapping independent link outage early.
	jct := base.JCT
	agingEdge, _ := g.EdgeBetween(g.NodeAt(2, 2), g.NodeAt(3, 2))
	failEdge, _ := g.EdgeBetween(g.NodeAt(1, 5), g.NodeAt(2, 5))
	lostNode := g.NodeAt(side/2, side/2)
	sched := faults.New(
		faults.Event{At: sim.Time(jct / 10), Target: agingEdge.Index(), Kind: faults.Degrade, Frac: 0.5},
		faults.Event{At: sim.Time(jct / 5), Target: failEdge.Index(), Kind: faults.LinkDown},
		faults.Event{At: sim.Time(jct / 2), Target: failEdge.Index(), Kind: faults.LinkUp},
		faults.Event{At: sim.Time(jct / 10 * 3), Target: int(lostNode), Kind: faults.NodeDown},
		faults.Event{At: sim.Time(jct / 10 * 4), Target: int(lostNode), Kind: faults.NodeUp},
	)
	fmt.Println("fault schedule (replayable, byte-stable):")
	fmt.Print(sched)

	reg := telemetry.NewRegistry()
	sm := fluid.NewSolverMetrics(reg)
	churn, err := fluid.Run(fluid.Config{Graph: g, Faults: sched, Metrics: sm}, specs)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 3: what adaptivity cost — and what it saved.
	fmt.Printf("\nunder churn: mean FCT %v, p99 %v, JCT %v\n", churn.MeanFCT, churn.P99FCT, churn.JCT)
	fmt.Printf("  capacity events applied   %d (node loss lowered to its links)\n", churn.Faults.CapacityEvents)
	fmt.Printf("  route columns repaired    %d (incremental Dijkstra, not full rebuilds)\n", churn.Faults.RouteRepairs)
	fmt.Printf("  flows rerouted mid-run    %d\n", churn.Faults.Reroutes)
	fmt.Printf("  starvation episodes       %d (flows a partition stranded until repair)\n", churn.Faults.StarvedEpisodes)
	if churn.Faults.StarvedEpisodes > 0 {
		fmt.Printf("  mean service recovery     %v\n", churn.Faults.StarvedTime/sim.Duration(churn.Faults.StarvedEpisodes))
	}
	fmt.Printf("  warm-start oracle hits    %.1f%% of refills\n", sm.WarmHitPct())
	fmt.Printf("\nthroughput degradation %.1f%%, p99 inflation %.1f%%\n",
		(1-float64(base.JCT)/float64(churn.JCT))*100,
		(float64(churn.P99FCT)/float64(base.P99FCT)-1)*100)
}
