// Adaptivefec: watch PLP #4 react to a degrading channel. A two-node link
// carries a stream of transfers while its bit error rate ramps from
// pristine to badly noisy; the Closed Ring Control escalates the FEC
// ladder as the measured BER crosses each profile's threshold, then
// de-escalates when the channel recovers.
package main

import (
	"fmt"
	"log"
	"time"

	"rackfab"
)

func main() {
	cluster, err := rackfab.New(rackfab.Config{
		Topology: rackfab.Line,
		Width:    2,
		Seed:     9,
		Control: rackfab.ControlConfig{
			Enabled:         true,
			Epoch:           30 * time.Microsecond,
			DisableReconfig: true,
			DisableBypass:   true,
			DisablePower:    true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("BER ramp on a 2-node link; CRC adapts the FEC profile:")
	fmt.Printf("%-10s %-10s %-16s %s\n", "phase", "true BER", "FEC after phase", "retransmits")

	phases := []struct {
		name string
		ber  float64
	}{
		{"pristine", 1e-15},
		{"aging", 1e-8},
		{"noisy", 1e-6},
		{"failing", 1e-5},
		{"repaired", 1e-15},
	}
	var prevRetx int64
	for _, ph := range phases {
		if err := cluster.SetLinkBER(0, 1, ph.ber); err != nil {
			log.Fatal(err)
		}
		flows, err := cluster.Inject([]rackfab.FlowSpec{
			{Src: 0, Dst: 1, Bytes: 2 << 20, Label: ph.name},
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := cluster.RunUntilDone(30 * time.Second); err != nil {
			log.Fatal(err)
		}
		prof, err := cluster.LinkFECName(0, 1)
		if err != nil {
			log.Fatal(err)
		}
		retx := flows[0].Retransmits()
		fmt.Printf("%-10s %-10.0e %-16s %d\n", ph.name, ph.ber, prof, retx-prevRetx)
	}

	rep := cluster.Report()
	fmt.Printf("\n%d frames delivered, %d corrupted on the wire, %d CRC decisions\n",
		rep.FramesDelivered, rep.FramesCorrupt, rep.CRCDecisions)
}
